//! A reimplementation of the HACC-IO checkpoint/restart benchmark.
//!
//! HACC-IO emulates the I/O of the HACC cosmology code: every rank owns a
//! particle population and checkpoints it (9 variables, 38 bytes per
//! particle: 7× `f32`, 1× `i64`, 1× `u16`), then restarts by reading it
//! back. The paper (§V-A) integrates it for "real I/O patterns like
//! checkpoint and restart", with its three file modes and two APIs.

use iokc_sim::api::{close_file, independent_xfer, open_file, IoApi};
use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::metrics::PhaseResult;
#[cfg(test)]
use iokc_sim::script::OpKind;
use iokc_sim::script::{OpenMode, ScriptSet, StripeHint};

/// Bytes per particle record (xx,yy,zz,vx,vy,vz,phi as f32; pid as i64;
/// mask as u16).
pub const BYTES_PER_PARTICLE: u64 = 38;

/// How ranks map to checkpoint files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMode {
    /// All ranks write one shared file.
    SingleSharedFile,
    /// Each rank writes its own file.
    FilePerProcess,
    /// Ranks are partitioned into groups of `group_size`, one file each.
    FilePerGroup {
        /// Ranks per group file.
        group_size: u32,
    },
}

impl FileMode {
    /// Name used in output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FileMode::SingleSharedFile => "single-shared-file",
            FileMode::FilePerProcess => "file-per-process",
            FileMode::FilePerGroup { .. } => "one-file-per-group",
        }
    }
}

/// HACC-IO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct HaccConfig {
    /// Particles per rank.
    pub particles_per_rank: u64,
    /// File layout mode.
    pub mode: FileMode,
    /// I/O interface (POSIX or MPI-IO per the real benchmark).
    pub api: IoApi,
    /// Checkpoint file path (base name).
    pub path: String,
    /// Perform the restart (read-back) phase.
    pub restart: bool,
}

impl HaccConfig {
    /// A standard configuration.
    #[must_use]
    pub fn new(particles_per_rank: u64, mode: FileMode, api: IoApi, path: &str) -> HaccConfig {
        HaccConfig {
            particles_per_rank,
            mode,
            api,
            path: path.to_owned(),
            restart: true,
        }
    }

    /// Bytes each rank moves per phase.
    #[must_use]
    pub fn bytes_per_rank(&self) -> u64 {
        self.particles_per_rank * BYTES_PER_PARTICLE
    }

    fn file_of(&self, rank: u32) -> (String, u64) {
        match self.mode {
            FileMode::SingleSharedFile => {
                (self.path.clone(), u64::from(rank) * self.bytes_per_rank())
            }
            FileMode::FilePerProcess => (format!("{}.{rank:06}", self.path), 0),
            FileMode::FilePerGroup { group_size } => {
                let gs = group_size.max(1);
                let group = rank / gs;
                let within = u64::from(rank % gs);
                (
                    format!("{}.g{group:04}", self.path),
                    within * self.bytes_per_rank(),
                )
            }
        }
    }
}

/// Result of a HACC-IO run.
#[derive(Debug, Clone)]
pub struct HaccResult {
    /// Configuration executed.
    pub config: HaccConfig,
    /// Rank count.
    pub np: u32,
    /// Checkpoint (write) bandwidth, MiB/s.
    pub checkpoint_bw_mib: f64,
    /// Restart (read) bandwidth, MiB/s (0 when restart disabled).
    pub restart_bw_mib: f64,
    /// Checkpoint phase record.
    pub checkpoint: PhaseResult,
    /// Restart phase record, when performed.
    pub restart: Option<PhaseResult>,
}

impl HaccResult {
    /// Render HACC-IO-style summary output.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("-------- HACC-IO (iokc reimplementation) --------\n");
        out.push_str(&format!("Number of ranks    : {}\n", self.np));
        out.push_str(&format!(
            "Particles per rank : {}\n",
            self.config.particles_per_rank
        ));
        out.push_str(&format!(
            "File mode          : {}\n",
            self.config.mode.as_str()
        ));
        out.push_str(&format!(
            "API                : {}\n",
            self.config.api.as_str()
        ));
        out.push_str(&format!(
            "Data per rank      : {:.2} MB\n",
            self.config.bytes_per_rank() as f64 / 1e6
        ));
        out.push_str(&format!(
            "Aggregate Checkpoint Performance: {:.2} MiB/s\n",
            self.checkpoint_bw_mib
        ));
        if self.restart.is_some() {
            out.push_str(&format!(
                "Aggregate Restart Performance:    {:.2} MiB/s\n",
                self.restart_bw_mib
            ));
        }
        out
    }
}

/// Execute HACC-IO: checkpoint, then (optionally) restart.
pub fn run_hacc(
    world: &mut World,
    layout: JobLayout,
    config: &HaccConfig,
) -> Result<HaccResult, SimError> {
    let np = layout.np;
    let per_rank = config.bytes_per_rank();
    // HACC-IO transfers each rank's particle block in large chunks; the
    // real GLEAN layer pushes one contiguous buffer — model as up to 8 MiB
    // pieces so striping parallelism is exercised.
    const PIECE: u64 = 8 << 20;

    // Checkpoint phase.
    let mut write_set = ScriptSet::new(np);
    for rank in 0..np {
        let (file, base) = config.file_of(rank);
        open_file(
            config.api,
            &mut write_set.rank(rank),
            &file,
            OpenMode::Write,
            StripeHint::default(),
        );
        write_set.rank(rank).barrier();
        let mut written = 0;
        while written < per_rank {
            let len = PIECE.min(per_rank - written);
            independent_xfer(
                config.api,
                &mut write_set.rank(rank),
                &file,
                base + written,
                len,
                true,
            );
            written += len;
        }
        write_set.rank(rank).fsync(&file);
        close_file(config.api, &mut write_set.rank(rank), &file);
        write_set.rank(rank).barrier();
    }
    let checkpoint = world.run(layout, &write_set)?;
    let checkpoint_bw_mib =
        iokc_util::units::mib_per_sec(per_rank * u64::from(np), checkpoint.wall().nanos());

    // Restart phase: every rank reads back a *different* rank's block
    // (restart after re-balancing never aligns with the writer), which
    // also defeats the page cache as on a real restart from a fresh job.
    let (restart, restart_bw_mib) = if config.restart {
        let mut read_set = ScriptSet::new(np);
        for rank in 0..np {
            let peer = (rank + layout.ppn) % np;
            let (file, base) = config.file_of(peer);
            open_file(
                config.api,
                &mut read_set.rank(rank),
                &file,
                OpenMode::Read,
                StripeHint::default(),
            );
            read_set.rank(rank).barrier();
            let mut read = 0;
            while read < per_rank {
                let len = PIECE.min(per_rank - read);
                independent_xfer(
                    config.api,
                    &mut read_set.rank(rank),
                    &file,
                    base + read,
                    len,
                    false,
                );
                read += len;
            }
            close_file(config.api, &mut read_set.rank(rank), &file);
            read_set.rank(rank).barrier();
        }
        let result = world.run(layout, &read_set)?;
        let bw = iokc_util::units::mib_per_sec(per_rank * u64::from(np), result.wall().nanos());
        (Some(result), bw)
    } else {
        (None, 0.0)
    };

    Ok(HaccResult {
        config: config.clone(),
        np,
        checkpoint_bw_mib,
        restart_bw_mib,
        checkpoint,
        restart,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::FaultPlan;

    fn world() -> World {
        World::new(SystemConfig::test_small(), FaultPlan::none(), 123)
    }

    #[test]
    fn particle_record_is_38_bytes() {
        // 7 × f32 + i64 + u16 = 28 + 8 + 2.
        assert_eq!(BYTES_PER_PARTICLE, 7 * 4 + 8 + 2);
        let cfg = HaccConfig::new(
            1_000_000,
            FileMode::FilePerProcess,
            IoApi::Posix,
            "/scratch/p",
        );
        assert_eq!(cfg.bytes_per_rank(), 38_000_000);
    }

    #[test]
    fn file_modes_map_ranks_correctly() {
        let mk = |mode| HaccConfig::new(100, mode, IoApi::Posix, "/scratch/hacc");
        let ssf = mk(FileMode::SingleSharedFile);
        assert_eq!(ssf.file_of(0), ("/scratch/hacc".to_owned(), 0));
        assert_eq!(ssf.file_of(3), ("/scratch/hacc".to_owned(), 3 * 3800));
        let fpp = mk(FileMode::FilePerProcess);
        assert_eq!(fpp.file_of(2), ("/scratch/hacc.000002".to_owned(), 0));
        let fpg = mk(FileMode::FilePerGroup { group_size: 2 });
        assert_eq!(fpg.file_of(0), ("/scratch/hacc.g0000".to_owned(), 0));
        assert_eq!(fpg.file_of(1), ("/scratch/hacc.g0000".to_owned(), 3800));
        assert_eq!(fpg.file_of(2), ("/scratch/hacc.g0001".to_owned(), 0));
    }

    #[test]
    fn checkpoint_and_restart_run() {
        let mut w = world();
        let cfg = HaccConfig::new(
            50_000,
            FileMode::FilePerProcess,
            IoApi::Posix,
            "/scratch/hc",
        );
        let result = run_hacc(&mut w, JobLayout::new(4, 2), &cfg).unwrap();
        assert!(result.checkpoint_bw_mib > 0.0);
        assert!(result.restart_bw_mib > 0.0);
        assert_eq!(result.checkpoint.bytes(OpKind::Write), 4 * 50_000 * 38);
        assert_eq!(
            result.restart.as_ref().unwrap().bytes(OpKind::Read),
            4 * 50_000 * 38
        );
    }

    #[test]
    fn shared_file_mode_creates_one_file() {
        let mut w = world();
        let cfg = HaccConfig::new(
            10_000,
            FileMode::SingleSharedFile,
            IoApi::MpiIo { collective: false },
            "/scratch/ssf",
        );
        run_hacc(&mut w, JobLayout::new(4, 2), &cfg).unwrap();
        assert!(w.namespace().file("/scratch/ssf").is_some());
        assert_eq!(
            w.namespace().file("/scratch/ssf").unwrap().size,
            4 * 380_000
        );
        assert_eq!(w.namespace().file_count(), 1);
    }

    #[test]
    fn group_mode_creates_one_file_per_group() {
        let mut w = world();
        let cfg = HaccConfig::new(
            10_000,
            FileMode::FilePerGroup { group_size: 2 },
            IoApi::Posix,
            "/scratch/grp",
        );
        run_hacc(&mut w, JobLayout::new(4, 2), &cfg).unwrap();
        assert_eq!(w.namespace().file_count(), 2);
        assert!(w.namespace().file("/scratch/grp.g0000").is_some());
        assert!(w.namespace().file("/scratch/grp.g0001").is_some());
    }

    #[test]
    fn render_reports_performance() {
        let mut w = world();
        let cfg = HaccConfig::new(10_000, FileMode::FilePerProcess, IoApi::Posix, "/scratch/r");
        let result = run_hacc(&mut w, JobLayout::new(2, 2), &cfg).unwrap();
        let text = result.render();
        assert!(text.contains("Aggregate Checkpoint Performance:"));
        assert!(text.contains("Aggregate Restart Performance:"));
        assert!(text.contains("file-per-process"));
        assert!(text.contains("Particles per rank : 10000"));
    }
}
