//! A reimplementation of the mdtest metadata benchmark.
//!
//! mdtest stresses file-metadata paths: each rank creates, stats, reads
//! and removes a population of (usually tiny) files. IO500 uses two
//! standard variants:
//!
//! * **easy** — each rank works in its own directory (metadata load
//!   spreads across metadata servers), zero-byte files;
//! * **hard** — all ranks share one directory (every operation hammers
//!   the same metadata server) and each file carries a 3901-byte write
//!   (read back in `mdtest-hard-read`).

use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::metrics::PhaseResult;
#[cfg(test)]
use iokc_sim::script::OpKind;
use iokc_sim::script::{OpenMode, ScriptSet};
use iokc_util::stats;

/// mdtest variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdWorkload {
    /// Unique directory per rank, empty files.
    Easy,
    /// Single shared directory, 3901-byte files.
    Hard,
    /// Arbitrary combination parsed from a command line.
    Custom {
        /// Unique directory per rank (`-u`)?
        unique_dirs: bool,
        /// Payload bytes per file (`-w`).
        bytes: u64,
    },
}

impl MdWorkload {
    /// Name fragment used in IO500 phase names.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MdWorkload::Easy => "easy",
            MdWorkload::Hard => "hard",
            MdWorkload::Custom { .. } => "custom",
        }
    }

    /// Per-file payload bytes.
    #[must_use]
    pub fn file_bytes(self) -> u64 {
        match self {
            MdWorkload::Easy => 0,
            MdWorkload::Hard => 3901,
            MdWorkload::Custom { bytes, .. } => bytes,
        }
    }

    /// Does every rank work in its own directory?
    #[must_use]
    pub fn unique_dirs(self) -> bool {
        match self {
            MdWorkload::Easy => true,
            MdWorkload::Hard => false,
            MdWorkload::Custom { unique_dirs, .. } => unique_dirs,
        }
    }
}

/// mdtest configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MdtestConfig {
    /// Files per rank (`-n`).
    pub files_per_rank: u64,
    /// Variant (easy/hard).
    pub workload: MdWorkload,
    /// Working directory root (`-d`).
    pub dir: String,
    /// Iterations (`-i`).
    pub iterations: u32,
}

impl MdtestConfig {
    /// The IO500 `mdtest-easy` setup at a given scale.
    #[must_use]
    pub fn easy(dir: &str, files_per_rank: u64) -> MdtestConfig {
        MdtestConfig {
            files_per_rank,
            workload: MdWorkload::Easy,
            dir: dir.to_owned(),
            iterations: 1,
        }
    }

    /// The IO500 `mdtest-hard` setup at a given scale.
    #[must_use]
    pub fn hard(dir: &str, files_per_rank: u64) -> MdtestConfig {
        MdtestConfig {
            files_per_rank,
            workload: MdWorkload::Hard,
            dir: dir.to_owned(),
            iterations: 1,
        }
    }

    fn rank_dir(&self, rank: u32) -> String {
        if self.workload.unique_dirs() {
            format!("{}/mdtest_tree.{rank}", self.dir)
        } else {
            format!("{}/mdtest_shared", self.dir)
        }
    }

    /// Parse an `mdtest …` command line: `-n <files/rank>`, `-d <dir>`,
    /// `-i <iterations>`, `-u` (unique dirs), `-w <bytes>` (payload).
    pub fn parse_command(command: &str) -> Result<MdtestConfig, MdtestParseError> {
        let tokens: Vec<&str> = command.split_whitespace().collect();
        let mut i = 0;
        if tokens.first().copied() == Some("mdtest") {
            i = 1;
        }
        let mut files_per_rank = 100u64;
        let mut dir = "/scratch".to_owned();
        let mut iterations = 1u32;
        let mut unique_dirs = false;
        let mut bytes = 0u64;
        let value = |i: &mut usize, flag: &str| -> Result<String, MdtestParseError> {
            *i += 1;
            tokens
                .get(*i)
                .map(|s| (*s).to_owned())
                .ok_or_else(|| MdtestParseError(format!("missing value for {flag}")))
        };
        while i < tokens.len() {
            match tokens[i] {
                "-n" => {
                    files_per_rank = value(&mut i, "-n")?
                        .parse()
                        .map_err(|_| MdtestParseError("bad -n".into()))?;
                }
                "-d" => dir = value(&mut i, "-d")?,
                "-i" => {
                    iterations = value(&mut i, "-i")?
                        .parse()
                        .map_err(|_| MdtestParseError("bad -i".into()))?;
                }
                "-u" => unique_dirs = true,
                "-w" | "-e" => {
                    bytes = value(&mut i, "-w")?
                        .parse()
                        .map_err(|_| MdtestParseError("bad payload size".into()))?;
                }
                other => return Err(MdtestParseError(format!("unknown option {other}"))),
            }
            i += 1;
        }
        if files_per_rank == 0 || iterations == 0 {
            return Err(MdtestParseError("-n and -i must be non-zero".into()));
        }
        let workload = match (unique_dirs, bytes) {
            (true, 0) => MdWorkload::Easy,
            (false, 3901) => MdWorkload::Hard,
            _ => MdWorkload::Custom { unique_dirs, bytes },
        };
        Ok(MdtestConfig {
            files_per_rank,
            workload,
            dir,
            iterations,
        })
    }

    /// Render the canonical command line for this configuration.
    #[must_use]
    pub fn to_command(&self) -> String {
        let mut out = format!(
            "mdtest -n {} -d {} -i {}",
            self.files_per_rank, self.dir, self.iterations
        );
        if self.workload.unique_dirs() {
            out.push_str(" -u");
        }
        let bytes = self.workload.file_bytes();
        if bytes > 0 {
            out.push_str(&format!(" -w {bytes} -e {bytes}"));
        }
        out
    }

    fn file_path(&self, rank: u32, index: u64) -> String {
        format!("{}/file.mdtest.{rank}.{index}", self.rank_dir(rank))
    }
}

/// Error parsing an mdtest command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MdtestParseError(pub String);

impl std::fmt::Display for MdtestParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid mdtest command: {}", self.0)
    }
}

impl std::error::Error for MdtestParseError {}

/// The metadata phases mdtest measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MdPhase {
    /// File creation (plus payload write for hard).
    Creation,
    /// `stat` on every file.
    Stat,
    /// Read-back of the payload.
    Read,
    /// `unlink` of every file.
    Removal,
}

impl MdPhase {
    /// All phases in execution order.
    pub const ALL: [MdPhase; 4] = [
        MdPhase::Creation,
        MdPhase::Stat,
        MdPhase::Read,
        MdPhase::Removal,
    ];

    /// Label used in mdtest's summary table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MdPhase::Creation => "File creation",
            MdPhase::Stat => "File stat",
            MdPhase::Read => "File read",
            MdPhase::Removal => "File removal",
        }
    }
}

/// Result of one mdtest run.
#[derive(Debug, Clone)]
pub struct MdtestResult {
    /// Configuration executed.
    pub config: MdtestConfig,
    /// Rank count.
    pub np: u32,
    /// Per-iteration rates (ops/s) for each phase.
    pub rates: Vec<(MdPhase, Vec<f64>)>,
    /// Raw per-phase results of the final iteration.
    pub phases: Vec<(MdPhase, PhaseResult)>,
}

impl MdtestResult {
    /// Mean rate of a phase over iterations, ops/s.
    #[must_use]
    pub fn mean_rate(&self, phase: MdPhase) -> f64 {
        self.rates
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, rates)| stats::mean(rates))
            .unwrap_or(0.0)
    }

    /// Max rate of a phase over iterations, ops/s.
    #[must_use]
    pub fn max_rate(&self, phase: MdPhase) -> f64 {
        self.rates
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, rates)| stats::max(rates))
            .unwrap_or(0.0)
    }

    /// Render mdtest's native `SUMMARY rate` table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("mdtest-3.4.0 (iokc reimplementation) was launched with ");
        out.push_str(&format!(
            "{} total task(s) on {} node(s)\n",
            self.np,
            self.np // one rank per node is not implied; informational only
        ));
        out.push_str(&format!(
            "Command line used: mdtest -n {} -d {}{}\n\n",
            self.config.files_per_rank,
            self.config.dir,
            match self.config.workload {
                MdWorkload::Easy => " -u".to_owned(),
                MdWorkload::Hard => " -w 3901 -e 3901".to_owned(),
                MdWorkload::Custom { unique_dirs, bytes } => {
                    let mut extra = String::new();
                    if unique_dirs {
                        extra.push_str(" -u");
                    }
                    if bytes > 0 {
                        extra.push_str(&format!(" -w {bytes} -e {bytes}"));
                    }
                    extra
                }
            }
        ));
        out.push_str(&format!(
            "SUMMARY rate: (of {} iterations)\n",
            self.config.iterations
        ));
        out.push_str(
            "   Operation                      Max            Min           Mean        Std Dev\n",
        );
        out.push_str(
            "   ---------                      ---            ---           ----        -------\n",
        );
        for (phase, rates) in &self.rates {
            out.push_str(&format!(
                "   {:<22}   : {:>14.3} {:>14.3} {:>14.3} {:>14.3}\n",
                phase.label(),
                stats::max(rates),
                stats::min(rates),
                stats::mean(rates),
                stats::stddev(rates)
            ));
        }
        out
    }
}

/// Execute mdtest.
pub fn run_mdtest(
    world: &mut World,
    layout: JobLayout,
    config: &MdtestConfig,
) -> Result<MdtestResult, SimError> {
    let np = layout.np;
    let mut rates: Vec<(MdPhase, Vec<f64>)> =
        MdPhase::ALL.iter().map(|p| (*p, Vec::new())).collect();
    let mut last_phases = Vec::new();

    for _iter in 0..config.iterations {
        // Setup: create the working tree (rank 0 makes the root; each rank
        // its own dir under easy, rank 0 the shared dir under hard).
        let mut setup = ScriptSet::new(np);
        if config.workload.unique_dirs() {
            for rank in 0..np {
                setup.rank(rank).mkdir(&config.rank_dir(rank));
            }
        } else {
            setup.rank(0).mkdir(&config.rank_dir(0));
        }
        for rank in 0..np {
            setup.rank(rank).barrier();
        }
        world.run(layout, &setup)?;

        last_phases.clear();
        for phase in MdPhase::ALL {
            if phase == MdPhase::Read && config.workload.file_bytes() == 0 {
                // mdtest skips the read phase for 0-byte files... it still
                // opens+closes; model it as stat-equivalent opens.
            }
            let mut set = ScriptSet::new(np);
            for rank in 0..np {
                let mut rs = set.rank(rank);
                for index in 0..config.files_per_rank {
                    let path = config.file_path(rank, index);
                    match phase {
                        MdPhase::Creation => {
                            rs.open(&path, OpenMode::Write);
                            if config.workload.file_bytes() > 0 {
                                rs.write(&path, 0, config.workload.file_bytes());
                            }
                            rs.close(&path);
                        }
                        MdPhase::Stat => {
                            rs.stat(&path);
                        }
                        MdPhase::Read => {
                            rs.open(&path, OpenMode::Read);
                            if config.workload.file_bytes() > 0 {
                                rs.read(&path, 0, config.workload.file_bytes());
                            }
                            rs.close(&path);
                        }
                        MdPhase::Removal => {
                            rs.unlink(&path);
                        }
                    }
                }
                rs.barrier();
            }
            let result = world.run(layout, &set)?;
            let total_ops = u64::from(np) * config.files_per_rank;
            let rate = total_ops as f64 / result.wall().as_secs_f64().max(1e-9);
            rates
                .iter_mut()
                .find(|(p, _)| *p == phase)
                .expect("phase present")
                .1
                .push(rate);
            last_phases.push((phase, result));
        }

        // Teardown the tree.
        let mut teardown = ScriptSet::new(np);
        if config.workload.unique_dirs() {
            for rank in 0..np {
                teardown.rank(rank).rmdir(&config.rank_dir(rank));
            }
        } else {
            for rank in 0..np {
                teardown.rank(rank).barrier();
            }
            teardown.rank(0).rmdir(&config.rank_dir(0));
        }
        world.run(layout, &teardown)?;
    }

    Ok(MdtestResult {
        config: config.clone(),
        np,
        rates,
        phases: last_phases,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::FaultPlan;

    fn world() -> World {
        World::new(SystemConfig::test_small(), FaultPlan::none(), 77)
    }

    #[test]
    fn easy_runs_all_phases() {
        let mut w = world();
        let cfg = MdtestConfig::easy("/scratch", 20);
        let result = run_mdtest(&mut w, JobLayout::new(2, 2), &cfg).unwrap();
        for phase in MdPhase::ALL {
            assert!(
                result.mean_rate(phase) > 0.0,
                "{} rate is zero",
                phase.label()
            );
        }
        // Tree is gone afterwards.
        assert_eq!(w.namespace().file_count(), 0);
        assert!(!w.namespace().is_dir("/scratch/mdtest_tree.0"));
    }

    #[test]
    fn hard_is_slower_than_easy_on_creation() {
        // Shared-directory metadata contention (one MDS) vs spread trees.
        let mut w = world();
        let easy = run_mdtest(
            &mut w,
            JobLayout::new(4, 1),
            &MdtestConfig::easy("/scratch", 50),
        )
        .unwrap();
        let hard = run_mdtest(
            &mut w,
            JobLayout::new(4, 1),
            &MdtestConfig::hard("/scratch", 50),
        )
        .unwrap();
        let easy_rate = easy.mean_rate(MdPhase::Creation);
        let hard_rate = hard.mean_rate(MdPhase::Creation);
        assert!(
            hard_rate < easy_rate,
            "hard create ({hard_rate}) should trail easy ({easy_rate})"
        );
    }

    #[test]
    fn rates_are_bounded_by_metadata_capacity() {
        let mut w = world();
        let cfg = MdtestConfig::easy("/scratch", 100);
        let result = run_mdtest(&mut w, JobLayout::new(4, 1), &cfg).unwrap();
        let cap = w.system().pfs.mds_ops_per_sec * f64::from(w.system().pfs.metadata_servers);
        for phase in MdPhase::ALL {
            let rate = result.mean_rate(phase);
            assert!(rate < cap * 1.5, "{}: {rate} vs cap {cap}", phase.label());
        }
    }

    #[test]
    fn render_produces_summary_table() {
        let mut w = world();
        let cfg = MdtestConfig::hard("/scratch", 10);
        let result = run_mdtest(&mut w, JobLayout::new(2, 2), &cfg).unwrap();
        let text = result.render();
        assert!(text.contains("SUMMARY rate:"));
        assert!(text.contains("File creation"));
        assert!(text.contains("File removal"));
        assert!(text.contains("-w 3901"));
    }

    #[test]
    fn command_parse_and_roundtrip() {
        let easy = MdtestConfig::parse_command("mdtest -n 400 -d /scratch/md -i 2 -u").unwrap();
        assert_eq!(easy.workload, MdWorkload::Easy);
        assert_eq!(easy.files_per_rank, 400);
        assert_eq!(easy.iterations, 2);
        let hard = MdtestConfig::parse_command("mdtest -n 250 -d /scratch -w 3901").unwrap();
        assert_eq!(hard.workload, MdWorkload::Hard);
        let custom = MdtestConfig::parse_command("mdtest -n 10 -u -w 128").unwrap();
        assert_eq!(
            custom.workload,
            MdWorkload::Custom {
                unique_dirs: true,
                bytes: 128
            }
        );
        // Round trip through to_command.
        for config in [&easy, &hard, &custom] {
            let reparsed = MdtestConfig::parse_command(&config.to_command()).unwrap();
            assert_eq!(reparsed, *config);
        }
        assert!(MdtestConfig::parse_command("mdtest -n 0").is_err());
        assert!(MdtestConfig::parse_command("mdtest -q").is_err());
        assert!(MdtestConfig::parse_command("mdtest -n").is_err());
    }

    #[test]
    fn custom_workload_runs() {
        let mut w = world();
        let config = MdtestConfig::parse_command("mdtest -n 5 -d /scratch -u -w 256").unwrap();
        let result = run_mdtest(&mut w, JobLayout::new(2, 2), &config).unwrap();
        assert!(result.mean_rate(MdPhase::Creation) > 0.0);
        let create_phase = &result
            .phases
            .iter()
            .find(|(p, _)| *p == MdPhase::Creation)
            .unwrap()
            .1;
        assert_eq!(create_phase.bytes(OpKind::Write), 2 * 5 * 256);
    }

    #[test]
    fn hard_files_carry_payload() {
        let mut w = world();
        let cfg = MdtestConfig::hard("/scratch", 5);
        let result = run_mdtest(&mut w, JobLayout::new(2, 2), &cfg).unwrap();
        let create_phase = &result
            .phases
            .iter()
            .find(|(p, _)| *p == MdPhase::Creation)
            .unwrap()
            .1;
        assert_eq!(create_phase.bytes(OpKind::Write), 2 * 5 * 3901);
        let read_phase = &result
            .phases
            .iter()
            .find(|(p, _)| *p == MdPhase::Read)
            .unwrap()
            .1;
        assert_eq!(read_phase.bytes(OpKind::Read), 2 * 5 * 3901);
    }
}
