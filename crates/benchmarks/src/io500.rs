//! A reimplementation of the IO500 benchmark suite.
//!
//! Runs the standard twelve phases — the four bandwidth tests (ior-easy /
//! ior-hard, write then read), the seven metadata tests (mdtest-easy /
//! mdtest-hard: write, stat, delete, plus hard read) and `find` — and
//! reports each phase plus the geometric-mean scores in the official
//! result format. The paper integrates IO500 both as a knowledge
//! generator (§V-A) and as the basis of the bounding-box anomaly detector
//! (§V-E2, after Liem et al.).

use crate::find::run_find;
use crate::ior::{run_ior, Access, IorConfig};
use iokc_sim::api::IoApi;
use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::script::{OpenMode, ScriptSet, StripeHint};
use iokc_util::stats::geometric_mean;
use std::collections::BTreeMap;

/// Per-phase fault schedule: faults to activate while a named phase runs
/// (e.g. a node failing during `ior-easy-read`, the Fig. 6 scenario).
/// Phases not listed run under the world's base fault plan.
pub type PhaseFaults = BTreeMap<String, FaultPlan>;

/// The unit a phase reports in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseUnit {
    /// Bandwidth phases (GiB/s).
    GibPerSec,
    /// Metadata phases (kIOPS).
    Kiops,
}

impl PhaseUnit {
    /// Unit string as printed in result lines.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PhaseUnit::GibPerSec => "GiB/s",
            PhaseUnit::Kiops => "kIOPS",
        }
    }
}

/// One phase's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Io500Phase {
    /// Official phase name (e.g. `ior-easy-write`).
    pub name: String,
    /// Measured value in `unit`.
    pub value: f64,
    /// Unit.
    pub unit: PhaseUnit,
    /// Elapsed seconds.
    pub time_s: f64,
}

/// IO500 workload scale (per-rank sizes, kept configurable so tests run
/// quickly while experiment binaries use realistic scales).
#[derive(Debug, Clone, PartialEq)]
pub struct Io500Config {
    /// Working directory.
    pub dir: String,
    /// ior-easy: bytes per rank (file-per-process, 256 KiB aligned
    /// transfers).
    pub ior_easy_bytes_per_rank: u64,
    /// ior-hard: number of 47008-byte writes per rank to one shared file.
    pub ior_hard_writes_per_rank: u64,
    /// mdtest-easy: files per rank (0-byte, unique dirs).
    pub mdtest_easy_files_per_rank: u64,
    /// mdtest-hard: files per rank (3901-byte, shared dir).
    pub mdtest_hard_files_per_rank: u64,
}

impl Io500Config {
    /// A small scale suitable for unit tests and quick demos.
    #[must_use]
    pub fn small(dir: &str) -> Io500Config {
        Io500Config {
            dir: dir.to_owned(),
            ior_easy_bytes_per_rank: 8 << 20,
            ior_hard_writes_per_rank: 64,
            mdtest_easy_files_per_rank: 40,
            mdtest_hard_files_per_rank: 30,
        }
    }

    /// A medium scale for the paper's experiments (40 ranks on the
    /// simulated FUCHS-CSC).
    #[must_use]
    pub fn standard(dir: &str) -> Io500Config {
        Io500Config {
            dir: dir.to_owned(),
            ior_easy_bytes_per_rank: 256 << 20,
            ior_hard_writes_per_rank: 1500,
            mdtest_easy_files_per_rank: 400,
            mdtest_hard_files_per_rank: 250,
        }
    }
}

/// A complete IO500 run.
#[derive(Debug, Clone, PartialEq)]
pub struct Io500Result {
    /// Scale used.
    pub config: Io500Config,
    /// Rank count.
    pub np: u32,
    /// All phases in execution order.
    pub phases: Vec<Io500Phase>,
    /// Geometric mean of bandwidth phases, GiB/s.
    pub bw_score: f64,
    /// Geometric mean of metadata phases, kIOPS.
    pub md_score: f64,
    /// Overall score: √(bw × md).
    pub total_score: f64,
}

impl Io500Result {
    /// Look up a phase by name.
    #[must_use]
    pub fn phase(&self, name: &str) -> Option<&Io500Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Render the official result block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("IO500 version io500-isc22 (iokc reimplementation)\n");
        for p in &self.phases {
            out.push_str(&format!(
                "[RESULT] {:>20} {:>14.6} {} : time {:.3} seconds\n",
                p.name,
                p.value,
                p.unit.as_str(),
                p.time_s
            ));
        }
        out.push_str(&format!(
            "[SCORE ] Bandwidth {:.6} GiB/s : IOPS {:.6} kiops : TOTAL {:.6}\n",
            self.bw_score, self.md_score, self.total_score
        ));
        out
    }
}

const HARD_XFER: u64 = 47_008; // IO500's deliberately unaligned size

/// Execute the IO500 suite.
pub fn run_io500(
    world: &mut World,
    layout: JobLayout,
    config: &Io500Config,
) -> Result<Io500Result, SimError> {
    run_io500_with_faults(world, layout, config, &PhaseFaults::new())
}

/// Switch the world onto the scheduled plan for a phase (or back to the
/// base plan).
fn phase_faults(world: &mut World, base: &FaultPlan, schedule: &PhaseFaults, phase: &str) {
    match schedule.get(phase) {
        Some(plan) => {
            let mut combined = base.clone();
            for fault in plan.faults() {
                combined.push(*fault);
            }
            world.set_faults(combined);
        }
        None => world.set_faults(base.clone()),
    }
}

/// Execute the IO500 suite with a per-phase fault schedule.
pub fn run_io500_with_faults(
    world: &mut World,
    layout: JobLayout,
    config: &Io500Config,
    schedule: &PhaseFaults,
) -> Result<Io500Result, SimError> {
    let base_faults = world.faults().clone();
    let np = layout.np;
    let mut phases: Vec<Io500Phase> = Vec::with_capacity(12);

    // Working directories.
    let easy_dir = format!("{}/ior-easy", config.dir);
    let hard_dir = format!("{}/ior-hard", config.dir);
    let mde_dir = format!("{}/mdtest-easy", config.dir);
    let mdh_dir = format!("{}/mdtest-hard", config.dir);
    let mut setup = ScriptSet::new(np);
    setup
        .rank(0)
        .mkdir(&config.dir)
        .mkdir(&easy_dir)
        .mkdir(&hard_dir)
        .mkdir(&mde_dir)
        .mkdir(&mdh_dir);
    // mdtest-easy unique dirs.
    for rank in 0..np {
        setup.rank(rank).barrier();
        let tree = format!("{mde_dir}/mdtest_tree.{rank}");
        setup.rank(rank).mkdir(&tree);
    }
    setup.rank(0).mkdir(&format!("{mdh_dir}/shared"));
    world.run(layout, &setup)?;

    // --- Phase 1: ior-easy-write -------------------------------------
    phase_faults(world, &base_faults, schedule, "ior-easy-write");
    let ior_easy = IorConfig {
        api: IoApi::Posix,
        block_size: config.ior_easy_bytes_per_rank,
        transfer_size: 256 << 10,
        segments: 1,
        file_per_proc: true,
        reorder_tasks: true,
        fsync: true,
        iterations: 1,
        test_file: format!("{easy_dir}/ior_file_easy"),
        keep_file: true,
        write: true,
        read: false,
        collective: false,
        random_offsets: false,
        deadline_secs: 0,
        stripe: StripeHint {
            chunk_size: None,
            stripe_count: Some(4),
        },
    };
    let result = run_ior(world, layout, &ior_easy, 1)?;
    phases.push(bw_phase("ior-easy-write", &result, Access::Write, np));

    // --- Phase 2: mdtest-easy-write ----------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-easy-write");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-easy-write",
        MdAction::Create { bytes: 0 },
        &easy_tree_paths(config, &mde_dir, np),
    )?);

    // --- Phase 3: ior-hard-write --------------------------------------
    phase_faults(world, &base_faults, schedule, "ior-hard-write");
    let ior_hard = IorConfig {
        api: IoApi::MpiIo { collective: false },
        block_size: HARD_XFER,
        transfer_size: HARD_XFER,
        segments: config.ior_hard_writes_per_rank,
        file_per_proc: false,
        reorder_tasks: true,
        fsync: true,
        iterations: 1,
        test_file: format!("{hard_dir}/ior_file_hard"),
        keep_file: true,
        write: true,
        read: false,
        collective: false,
        random_offsets: false,
        deadline_secs: 0,
        stripe: StripeHint {
            chunk_size: None,
            stripe_count: Some(4),
        },
    };
    let result = run_ior(world, layout, &ior_hard, 2)?;
    phases.push(bw_phase("ior-hard-write", &result, Access::Write, np));

    // --- Phase 4: mdtest-hard-write ----------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-hard-write");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-hard-write",
        MdAction::Create { bytes: 3901 },
        &hard_tree_paths(config, &mdh_dir, np),
    )?);

    // --- Phase 5: find -------------------------------------------------
    phase_faults(world, &base_faults, schedule, "find");
    let find = run_find(world, layout, &config.dir, "")?;
    phases.push(Io500Phase {
        name: "find".to_owned(),
        value: find.rate / 1000.0,
        unit: PhaseUnit::Kiops,
        time_s: find.elapsed_s,
    });

    // --- Phase 6: ior-easy-read ----------------------------------------
    phase_faults(world, &base_faults, schedule, "ior-easy-read");
    let mut easy_read = ior_easy.clone();
    easy_read.write = false;
    easy_read.read = true;
    let result = run_ior(world, layout, &easy_read, 3)?;
    phases.push(bw_phase("ior-easy-read", &result, Access::Read, np));

    // --- Phase 7: mdtest-easy-stat --------------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-easy-stat");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-easy-stat",
        MdAction::Stat,
        &easy_tree_paths(config, &mde_dir, np),
    )?);

    // --- Phase 8: ior-hard-read -----------------------------------------
    phase_faults(world, &base_faults, schedule, "ior-hard-read");
    let mut hard_read = ior_hard.clone();
    hard_read.write = false;
    hard_read.read = true;
    let result = run_ior(world, layout, &hard_read, 4)?;
    phases.push(bw_phase("ior-hard-read", &result, Access::Read, np));

    // --- Phase 9: mdtest-hard-stat ---------------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-hard-stat");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-hard-stat",
        MdAction::Stat,
        &hard_tree_paths(config, &mdh_dir, np),
    )?);

    // --- Phase 10: mdtest-easy-delete -------------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-easy-delete");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-easy-delete",
        MdAction::Delete,
        &easy_tree_paths(config, &mde_dir, np),
    )?);

    // --- Phase 11: mdtest-hard-read ----------------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-hard-read");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-hard-read",
        MdAction::Read {
            bytes: 3901,
            peer_shift: layout.ppn,
        },
        &hard_tree_paths(config, &mdh_dir, np),
    )?);

    // --- Phase 12: mdtest-hard-delete ----------------------------------------
    phase_faults(world, &base_faults, schedule, "mdtest-hard-delete");
    phases.push(md_phase(
        world,
        layout,
        "mdtest-hard-delete",
        MdAction::Delete,
        &hard_tree_paths(config, &mdh_dir, np),
    )?);

    // Cleanup of IOR files (IO500 removes its working set).
    world.set_faults(base_faults.clone());
    let mut cleanup = ScriptSet::new(np);
    for rank in 0..np {
        cleanup
            .rank(rank)
            .unlink(&format!("{easy_dir}/ior_file_easy.{rank:08}"));
    }
    cleanup.rank(0).unlink(&format!("{hard_dir}/ior_file_hard"));
    world.run(layout, &cleanup)?;

    let bw_values: Vec<f64> = phases
        .iter()
        .filter(|p| p.unit == PhaseUnit::GibPerSec)
        .map(|p| p.value)
        .collect();
    let md_values: Vec<f64> = phases
        .iter()
        .filter(|p| p.unit == PhaseUnit::Kiops)
        .map(|p| p.value)
        .collect();
    let bw_score = geometric_mean(&bw_values);
    let md_score = geometric_mean(&md_values);
    Ok(Io500Result {
        config: config.clone(),
        np,
        total_score: (bw_score * md_score).sqrt(),
        bw_score,
        md_score,
        phases,
    })
}

fn bw_phase(name: &str, run: &crate::ior::IorRunResult, access: Access, np: u32) -> Io500Phase {
    let sample = run
        .samples_of(access)
        .next()
        .expect("io500 ior phase produced one sample");
    let bytes = run.config.aggregate_bytes(np);
    Io500Phase {
        name: name.to_owned(),
        value: iokc_util::units::to_gib(bytes) / sample.total_s.max(1e-9),
        unit: PhaseUnit::GibPerSec,
        time_s: sample.total_s,
    }
}

/// What a metadata phase does with each file.
enum MdAction {
    Create { bytes: u64 },
    Stat,
    Read { bytes: u64, peer_shift: u32 },
    Delete,
}

/// Per-rank file path generator: `paths[rank]` is a closure-free list of
/// that rank's file paths.
fn easy_tree_paths(config: &Io500Config, mde_dir: &str, np: u32) -> Vec<Vec<String>> {
    (0..np)
        .map(|rank| {
            (0..config.mdtest_easy_files_per_rank)
                .map(|i| format!("{mde_dir}/mdtest_tree.{rank}/file.mdtest.{rank}.{i}"))
                .collect()
        })
        .collect()
}

fn hard_tree_paths(config: &Io500Config, mdh_dir: &str, np: u32) -> Vec<Vec<String>> {
    (0..np)
        .map(|rank| {
            (0..config.mdtest_hard_files_per_rank)
                .map(|i| format!("{mdh_dir}/shared/file.mdtest.{rank}.{i}"))
                .collect()
        })
        .collect()
}

fn md_phase(
    world: &mut World,
    layout: JobLayout,
    name: &str,
    action: MdAction,
    paths: &[Vec<String>],
) -> Result<Io500Phase, SimError> {
    let np = layout.np;
    let mut set = ScriptSet::new(np);
    let mut total_ops = 0u64;
    for rank in 0..np {
        let rank_paths: &[String] = match &action {
            MdAction::Read { peer_shift, .. } => {
                // Read a different node's files to defeat the page cache.
                &paths[((rank + peer_shift) % np) as usize]
            }
            _ => &paths[rank as usize],
        };
        let mut rs = set.rank(rank);
        for path in rank_paths {
            total_ops += 1;
            match &action {
                MdAction::Create { bytes } => {
                    rs.open(path, OpenMode::Write);
                    if *bytes > 0 {
                        rs.write(path, 0, *bytes);
                    }
                    rs.close(path);
                }
                MdAction::Stat => {
                    rs.stat(path);
                }
                MdAction::Read { bytes, .. } => {
                    rs.open(path, OpenMode::Read);
                    if *bytes > 0 {
                        rs.read(path, 0, *bytes);
                    }
                    rs.close(path);
                }
                MdAction::Delete => {
                    rs.unlink(path);
                }
            }
        }
        rs.barrier();
    }
    let result = world.run(layout, &set)?;
    let elapsed = result.wall().as_secs_f64().max(1e-9);
    Ok(Io500Phase {
        name: name.to_owned(),
        value: total_ops as f64 / elapsed / 1000.0,
        unit: PhaseUnit::Kiops,
        time_s: elapsed,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};

    fn run_small(seed: u64, faults: FaultPlan) -> Io500Result {
        let mut world = World::new(SystemConfig::test_small().with_noise(0.05), faults, seed);
        run_io500(
            &mut world,
            JobLayout::new(4, 2),
            &Io500Config::small("/scratch/io500"),
        )
        .unwrap()
    }

    #[test]
    fn all_twelve_phases_report() {
        let result = run_small(1, FaultPlan::none());
        assert_eq!(result.phases.len(), 12);
        let names: Vec<&str> = result.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "ior-easy-write",
                "mdtest-easy-write",
                "ior-hard-write",
                "mdtest-hard-write",
                "find",
                "ior-easy-read",
                "mdtest-easy-stat",
                "ior-hard-read",
                "mdtest-hard-stat",
                "mdtest-easy-delete",
                "mdtest-hard-read",
                "mdtest-hard-delete",
            ]
        );
        for p in &result.phases {
            assert!(p.value > 0.0, "{} reported zero", p.name);
            assert!(p.time_s > 0.0);
        }
    }

    #[test]
    fn scores_are_geometric_means() {
        let result = run_small(2, FaultPlan::none());
        let bw: Vec<f64> = result
            .phases
            .iter()
            .filter(|p| p.unit == PhaseUnit::GibPerSec)
            .map(|p| p.value)
            .collect();
        assert_eq!(bw.len(), 4);
        let md: Vec<f64> = result
            .phases
            .iter()
            .filter(|p| p.unit == PhaseUnit::Kiops)
            .map(|p| p.value)
            .collect();
        assert_eq!(md.len(), 8);
        assert!((result.bw_score - geometric_mean(&bw)).abs() < 1e-12);
        assert!((result.md_score - geometric_mean(&md)).abs() < 1e-12);
        assert!((result.total_score - (result.bw_score * result.md_score).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn easy_beats_hard() {
        let result = run_small(3, FaultPlan::none());
        let easy_w = result.phase("ior-easy-write").unwrap().value;
        let hard_w = result.phase("ior-hard-write").unwrap().value;
        assert!(
            easy_w > hard_w * 1.4,
            "ior-easy write {easy_w} should clearly beat ior-hard {hard_w}"
        );
        let md_easy = result.phase("mdtest-easy-write").unwrap().value;
        let md_hard = result.phase("mdtest-hard-write").unwrap().value;
        assert!(
            md_easy > md_hard,
            "mdtest-easy {md_easy} should beat mdtest-hard {md_hard}"
        );
    }

    #[test]
    fn degraded_target_lowers_read_bandwidth() {
        let healthy = run_small(4, FaultPlan::none());
        let degraded = run_small(
            4,
            FaultPlan::none()
                .with(Fault::permanent(FaultTarget::StorageTarget(0), 0.12))
                .with(Fault::permanent(FaultTarget::StorageTarget(1), 0.12)),
        );
        assert!(
            degraded.phase("ior-easy-read").unwrap().value
                < healthy.phase("ior-easy-read").unwrap().value,
            "degraded targets must lower ior-easy-read"
        );
        assert!(degraded.total_score < healthy.total_score);
    }

    #[test]
    fn render_matches_official_format() {
        let result = run_small(5, FaultPlan::none());
        let text = result.render();
        assert!(text.contains("[RESULT]"));
        assert!(text.contains("ior-easy-write"));
        assert!(text.contains("GiB/s : time"));
        assert!(text.contains("kIOPS : time"));
        assert!(text.contains("[SCORE ] Bandwidth"));
        assert!(text.contains("TOTAL"));
    }

    #[test]
    fn working_set_is_cleaned_up() {
        let mut world = World::new(SystemConfig::test_small(), FaultPlan::none(), 6);
        run_io500(
            &mut world,
            JobLayout::new(2, 2),
            &Io500Config::small("/scratch/clean"),
        )
        .unwrap();
        assert_eq!(
            world.namespace().file_count(),
            0,
            "io500 must remove everything it created"
        );
    }
}
