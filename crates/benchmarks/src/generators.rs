//! [`Generator`] phase modules: benchmarks as knowledge sources (§V-A).
//!
//! Each generator owns a simulated [`World`] (its "allocation" on the
//! cluster), runs its benchmark when the cycle asks, and emits the raw
//! artifacts a real deployment would leave behind: the benchmark's stdout
//! in its native format, BeeGFS entry info for the test file, `/proc`
//! snapshots, and (optionally) a binary Darshan log. The IOR generator is
//! reconfigurable, closing Example I's loop: the usage phase hands it a
//! new command and the next cycle iteration runs it.

use crate::hacc::{run_hacc, HaccConfig};
use crate::instrument::{darshan_from_phases, InstrumentOptions};
use crate::io500::{run_io500, Io500Config};
use crate::ior::{run_ior, IorConfig};
use crate::mdtest::{run_mdtest, MdtestConfig};
use iokc_core::ctx::PhaseCtx;
use iokc_core::phases::{Artifact, ArtifactKind, CycleError, Generator, PhaseKind};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::CrashSchedule;
use iokc_sim::sysinfo::ProcSnapshot;

/// Unix-time base for simulated runs (the paper's submission era).
const EPOCH: u64 = 1_656_590_400;

/// An IOR run as a knowledge generator.
pub struct IorGenerator {
    world: World,
    layout: JobLayout,
    config: IorConfig,
    seed: u64,
    /// Also emit a binary Darshan log artifact for each run.
    pub with_darshan: bool,
    /// Process-level fault injection: invocation attempts on this
    /// schedule die with a transient error instead of producing output.
    pub crashes: CrashSchedule,
    runs: u64,
}

impl IorGenerator {
    /// Create a generator executing `config` on `world`.
    #[must_use]
    pub fn new(world: World, layout: JobLayout, config: IorConfig, seed: u64) -> IorGenerator {
        IorGenerator {
            world,
            layout,
            config,
            seed,
            with_darshan: false,
            crashes: CrashSchedule::none(),
            runs: 0,
        }
    }

    /// The current command line.
    #[must_use]
    pub fn command(&self) -> String {
        self.config.to_command()
    }

    /// Access the world (inspection in tests and examples).
    #[must_use]
    pub fn world(&self) -> &World {
        &self.world
    }
}

impl Generator for IorGenerator {
    fn name(&self) -> &str {
        "ior-generator"
    }

    /// Accept any command the IOR front end can parse (the cycle's
    /// regeneration path).
    fn reconfigure(&mut self, command: &str) -> bool {
        match IorConfig::parse_command(command) {
            Ok(config) => {
                self.config = config;
                true
            }
            Err(_) => false,
        }
    }

    fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
        if self.crashes.tick() {
            return Err(ctx.transient_error(format!(
                "injected crash on attempt {}",
                self.crashes.calls() - 1
            )));
        }
        let run_tag = format!("ior-run-{}", self.runs);
        self.runs += 1;
        let start = self.world.now();
        let start_ns = start.nanos();
        let start_unix = EPOCH + start_ns / 1_000_000_000;
        let result = run_ior(
            &mut self.world,
            self.layout,
            &self.config,
            self.seed ^ self.runs,
        )
        .map_err(|e| CycleError::new(PhaseKind::Generation, "ior-generator", e))?;
        let end_ns = self.world.now().nanos();
        // Report the benchmark's simulated duration on the cycle's
        // (virtual) timeline, so spans reflect what a real run costs.
        ctx.advance_virtual_ns(self.world.elapsed_ns_since(start));
        let end_unix = EPOCH + end_ns / 1_000_000_000;
        let system_name = self.world.system().cluster.name.clone();

        let mut artifacts = Vec::new();
        let with_run_meta = |a: Artifact| {
            a.with_meta("run", &run_tag)
                .with_meta("system", &system_name)
                .with_meta("tasks", &self.layout.np.to_string())
                .with_meta("start_time", &start_unix.to_string())
                .with_meta("end_time", &end_unix.to_string())
        };
        artifacts.push(with_run_meta(
            Artifact::text(ArtifactKind::IorOutput, "ior_stdout", result.render())
                .with_meta("command", &self.config.to_command()),
        ));
        // Entry info of the (first) test file, when it still exists — in
        // the format of whatever file system the world is configured with.
        let probe = self.config.file_for(0);
        if self
            .world
            .system()
            .pfs
            .fs_type
            .eq_ignore_ascii_case("lustre")
        {
            if let Some(text) = self.world.namespace().entry_info_lustre(&probe) {
                artifacts.push(with_run_meta(Artifact::text(
                    ArtifactKind::LustreStripeInfo,
                    "getstripe",
                    text,
                )));
            }
        } else if let Some(text) = self.world.namespace().entry_info(&probe) {
            artifacts.push(with_run_meta(Artifact::text(
                ArtifactKind::BeegfsEntryInfo,
                "entryinfo",
                text,
            )));
        }
        let snapshot = ProcSnapshot::of(&self.world.system().cluster);
        artifacts.push(with_run_meta(Artifact::text(
            ArtifactKind::ProcCpuinfo,
            "cpuinfo",
            snapshot.render_cpuinfo(),
        )));
        artifacts.push(with_run_meta(Artifact::text(
            ArtifactKind::ProcMeminfo,
            "meminfo",
            snapshot.render_meminfo(),
        )));
        if self.with_darshan {
            let phase_refs: Vec<&iokc_sim::metrics::PhaseResult> =
                result.phases.iter().map(|(_, _, p)| p).collect();
            let log = darshan_from_phases(
                &phase_refs,
                &InstrumentOptions {
                    job_id: self.runs,
                    nprocs: self.layout.np,
                    exe: "ior".to_owned(),
                    dxt: true,
                    api: self.config.api,
                    start_unix,
                },
            );
            artifacts.push(with_run_meta(Artifact::binary(
                ArtifactKind::DarshanLog,
                "darshan.log",
                iokc_darshan::encode(&log),
            )));
        }
        Ok(artifacts)
    }
}

/// An IO500 run as a knowledge generator.
pub struct Io500Generator {
    world: World,
    layout: JobLayout,
    config: Io500Config,
    runs: u64,
}

impl Io500Generator {
    /// Create a generator executing the suite on `world`.
    #[must_use]
    pub fn new(world: World, layout: JobLayout, config: Io500Config) -> Io500Generator {
        Io500Generator {
            world,
            layout,
            config,
            runs: 0,
        }
    }
}

impl Generator for Io500Generator {
    fn name(&self) -> &str {
        "io500-generator"
    }

    fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
        let run_tag = format!("io500-run-{}", self.runs);
        self.runs += 1;
        let start = self.world.now();
        let start_ns = start.nanos();
        let start_unix = EPOCH + start_ns / 1_000_000_000;
        let result = run_io500(&mut self.world, self.layout, &self.config)
            .map_err(|e| CycleError::new(PhaseKind::Generation, "io500-generator", e))?;
        ctx.advance_virtual_ns(self.world.elapsed_ns_since(start));
        let system_name = self.world.system().cluster.name.clone();
        let snapshot = ProcSnapshot::of(&self.world.system().cluster);
        let with_run_meta = |a: Artifact| {
            a.with_meta("run", &run_tag)
                .with_meta("system", &system_name)
                .with_meta("tasks", &self.layout.np.to_string())
                .with_meta("start_time", &start_unix.to_string())
        };
        Ok(vec![
            with_run_meta(
                Artifact::text(ArtifactKind::Io500Output, "io500_result", result.render())
                    .with_meta("dir", &self.config.dir),
            ),
            with_run_meta(Artifact::text(
                ArtifactKind::ProcCpuinfo,
                "cpuinfo",
                snapshot.render_cpuinfo(),
            )),
            with_run_meta(Artifact::text(
                ArtifactKind::ProcMeminfo,
                "meminfo",
                snapshot.render_meminfo(),
            )),
        ])
    }
}

/// An mdtest run as a knowledge generator.
pub struct MdtestGenerator {
    world: World,
    layout: JobLayout,
    config: MdtestConfig,
    runs: u64,
}

impl MdtestGenerator {
    /// Create a generator executing `config` on `world`.
    #[must_use]
    pub fn new(world: World, layout: JobLayout, config: MdtestConfig) -> MdtestGenerator {
        MdtestGenerator {
            world,
            layout,
            config,
            runs: 0,
        }
    }
}

impl Generator for MdtestGenerator {
    fn name(&self) -> &str {
        "mdtest-generator"
    }

    fn reconfigure(&mut self, command: &str) -> bool {
        match MdtestConfig::parse_command(command) {
            Ok(config) => {
                self.config = config;
                true
            }
            Err(_) => false,
        }
    }

    fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
        let run_tag = format!("mdtest-run-{}", self.runs);
        self.runs += 1;
        let start = self.world.now();
        let start_ns = start.nanos();
        let start_unix = EPOCH + start_ns / 1_000_000_000;
        let result = run_mdtest(&mut self.world, self.layout, &self.config)
            .map_err(|e| CycleError::new(PhaseKind::Generation, "mdtest-generator", e))?;
        let end_ns = self.world.now().nanos();
        ctx.advance_virtual_ns(self.world.elapsed_ns_since(start));
        let end_unix = EPOCH + end_ns / 1_000_000_000;
        let system_name = self.world.system().cluster.name.clone();
        Ok(vec![Artifact::text(
            ArtifactKind::MdtestOutput,
            "mdtest_stdout",
            result.render(),
        )
        .with_meta("run", &run_tag)
        .with_meta("system", &system_name)
        .with_meta("tasks", &self.layout.np.to_string())
        .with_meta("command", &self.config.to_command())
        .with_meta("start_time", &start_unix.to_string())
        .with_meta("end_time", &end_unix.to_string())])
    }
}

/// A HACC-IO run as a knowledge generator.
pub struct HaccGenerator {
    world: World,
    layout: JobLayout,
    config: HaccConfig,
    runs: u64,
}

impl HaccGenerator {
    /// Create a generator executing `config` on `world`.
    #[must_use]
    pub fn new(world: World, layout: JobLayout, config: HaccConfig) -> HaccGenerator {
        HaccGenerator {
            world,
            layout,
            config,
            runs: 0,
        }
    }
}

impl Generator for HaccGenerator {
    fn name(&self) -> &str {
        "hacc-generator"
    }

    fn generate(&mut self, ctx: &mut PhaseCtx) -> Result<Vec<Artifact>, CycleError> {
        let run_tag = format!("hacc-run-{}", self.runs);
        self.runs += 1;
        let start = self.world.now();
        let start_ns = start.nanos();
        let start_unix = EPOCH + start_ns / 1_000_000_000;
        // Fresh file set per run: HACC-IO overwrites its checkpoint; the
        // simulated namespace keeps files, so unlink the previous set.
        if self.runs > 1 {
            let mut cleanup = iokc_sim::script::ScriptSet::new(self.layout.np);
            for rank in 0..self.layout.np {
                let (file, _) = hacc_file_of(&self.config, rank);
                if self.world.namespace().file(&file).is_some() && !cleanup.paths().contains(&file)
                {
                    cleanup.rank(rank % self.layout.np).unlink(&file);
                }
            }
            if cleanup.total_ops() > 0 {
                self.world
                    .run(self.layout, &cleanup)
                    .map_err(|e| CycleError::new(PhaseKind::Generation, "hacc-generator", e))?;
            }
        }
        let result = run_hacc(&mut self.world, self.layout, &self.config)
            .map_err(|e| CycleError::new(PhaseKind::Generation, "hacc-generator", e))?;
        let end_ns = self.world.now().nanos();
        ctx.advance_virtual_ns(self.world.elapsed_ns_since(start));
        let end_unix = EPOCH + end_ns / 1_000_000_000;
        let system_name = self.world.system().cluster.name.clone();
        Ok(vec![Artifact::text(
            ArtifactKind::HaccOutput,
            "hacc_stdout",
            result.render(),
        )
        .with_meta("run", &run_tag)
        .with_meta("system", &system_name)
        .with_meta("tasks", &self.layout.np.to_string())
        .with_meta("start_time", &start_unix.to_string())
        .with_meta("end_time", &end_unix.to_string())])
    }
}

/// The file a rank writes in a HACC-IO configuration (mirror of the
/// private `HaccConfig::file_of`).
fn hacc_file_of(config: &HaccConfig, rank: u32) -> (String, u64) {
    match config.mode {
        crate::hacc::FileMode::SingleSharedFile => (config.path.clone(), 0),
        crate::hacc::FileMode::FilePerProcess => (format!("{}.{rank:06}", config.path), 0),
        crate::hacc::FileMode::FilePerGroup { group_size } => {
            let group = rank / group_size.max(1);
            (format!("{}.g{group:04}", config.path), 0)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::FaultPlan;

    fn ctx() -> PhaseCtx {
        PhaseCtx::detached(PhaseKind::Generation, "test")
    }

    fn small_world(seed: u64) -> World {
        World::new(SystemConfig::test_small(), FaultPlan::none(), seed)
    }

    #[test]
    fn ior_generator_emits_expected_artifacts() {
        let config =
            IorConfig::parse_command("ior -a posix -b 1m -t 256k -s 1 -i 1 -o /scratch/g -F -k")
                .unwrap();
        let mut generator = IorGenerator::new(small_world(3), JobLayout::new(2, 2), config, 1);
        generator.with_darshan = true;
        let artifacts = generator.generate(&mut ctx()).unwrap();
        let kinds: Vec<ArtifactKind> = artifacts.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&ArtifactKind::IorOutput));
        assert!(kinds.contains(&ArtifactKind::BeegfsEntryInfo));
        assert!(kinds.contains(&ArtifactKind::ProcCpuinfo));
        assert!(kinds.contains(&ArtifactKind::ProcMeminfo));
        assert!(kinds.contains(&ArtifactKind::DarshanLog));
        let ior = artifacts
            .iter()
            .find(|a| a.kind == ArtifactKind::IorOutput)
            .unwrap();
        assert!(ior.as_text().unwrap().contains("Max Write:"));
        assert_eq!(ior.meta["run"], "ior-run-0");
        assert_eq!(ior.meta["tasks"], "2");
        // Second run advances the tag and time.
        let again = generator.generate(&mut ctx()).unwrap();
        assert_eq!(again[0].meta["run"], "ior-run-1");
        assert!(again[0].meta["start_time"] >= ior.meta["start_time"]);
    }

    #[test]
    fn lustre_world_emits_getstripe_artifacts() {
        let mut system = SystemConfig::test_small();
        system.pfs.fs_type = "Lustre".to_owned();
        let world = World::new(system, FaultPlan::none(), 4);
        let config =
            IorConfig::parse_command("ior -a posix -b 512k -t 256k -s 1 -F -i 1 -o /scratch/lg -k")
                .unwrap();
        let mut generator = IorGenerator::new(world, JobLayout::new(2, 2), config, 1);
        let artifacts = generator.generate(&mut ctx()).unwrap();
        let kinds: Vec<ArtifactKind> = artifacts.iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&ArtifactKind::LustreStripeInfo));
        assert!(!kinds.contains(&ArtifactKind::BeegfsEntryInfo));
        let lfs = artifacts
            .iter()
            .find(|a| a.kind == ArtifactKind::LustreStripeInfo)
            .unwrap();
        assert!(lfs.as_text().unwrap().contains("lmm_stripe_count"));
    }

    #[test]
    fn ior_generator_reconfigures() {
        let config =
            IorConfig::parse_command("ior -a posix -b 1m -t 256k -s 1 -i 1 -o /scratch/r -F -k")
                .unwrap();
        let mut generator = IorGenerator::new(small_world(5), JobLayout::new(2, 2), config, 1);
        assert!(generator.reconfigure("ior -a posix -b 2m -t 256k -s 1 -i 1 -o /scratch/r -F -k"));
        assert!(generator.command().contains("-b 2m"));
        assert!(!generator.reconfigure("mdtest -n 100"));
        let artifacts = generator.generate(&mut ctx()).unwrap();
        assert!(artifacts[0].meta["command"].contains("-b 2m"));
    }

    #[test]
    fn mdtest_generator_reconfigures_and_emits() {
        let config = MdtestConfig::parse_command("mdtest -n 8 -d /scratch -u").unwrap();
        let mut generator = MdtestGenerator::new(small_world(7), JobLayout::new(2, 2), config);
        let artifacts = generator.generate(&mut ctx()).unwrap();
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].kind, ArtifactKind::MdtestOutput);
        assert!(artifacts[0].as_text().unwrap().contains("SUMMARY rate:"));
        assert!(generator.reconfigure("mdtest -n 4 -d /scratch -w 128"));
        assert!(!generator.reconfigure("ior -b 4m"));
        let again = generator.generate(&mut ctx()).unwrap();
        assert!(again[0].meta["command"].contains("-w 128"));
    }

    #[test]
    fn hacc_generator_runs_twice() {
        use crate::hacc::FileMode;
        use iokc_sim::api::IoApi;
        let config = HaccConfig::new(
            10_000,
            FileMode::FilePerProcess,
            IoApi::Posix,
            "/scratch/haccgen",
        );
        let mut generator = HaccGenerator::new(small_world(8), JobLayout::new(2, 2), config);
        let first = generator.generate(&mut ctx()).unwrap();
        assert!(first[0]
            .as_text()
            .unwrap()
            .contains("Aggregate Checkpoint Performance"));
        // Second run must clean up the previous checkpoint files first.
        let second = generator.generate(&mut ctx()).unwrap();
        assert_eq!(second[0].meta["run"], "hacc-run-1");
    }

    #[test]
    fn io500_generator_emits_result_block() {
        let mut generator = Io500Generator::new(
            small_world(9),
            JobLayout::new(2, 2),
            Io500Config::small("/scratch/gen500"),
        );
        let artifacts = generator.generate(&mut ctx()).unwrap();
        let output = artifacts
            .iter()
            .find(|a| a.kind == ArtifactKind::Io500Output)
            .unwrap();
        assert!(output.as_text().unwrap().contains("[SCORE ]"));
        assert_eq!(output.meta["tasks"], "2");
        assert_eq!(output.meta["dir"], "/scratch/gen500");
    }
}
