//! Fleet corpus generator: a seeded, deterministic sweep of the IO500
//! suite across cluster shapes, file-system configurations and fault
//! mixes.
//!
//! Kunkel et al.'s IO500 analysis ("A Treasure Trove of Performance")
//! works on thousands of real submissions; this module synthesizes a
//! comparable population from the simulator so the corpus-analytics
//! layer (`store::aggregate`, the distribution endpoints, the
//! corpus-wide bounding box) has fleet-scale data to chew on. Every run
//! is a full [`crate::io500::run_io500`] execution whose rendered
//! official result block is meant to flow through the normal extract
//! path (`iokc_extract::parse_io500_output`) into the store — the
//! generator produces *submissions*, not knowledge objects.
//!
//! Determinism: point `i` of a spec with seed `s` always simulates the
//! same world. The per-run seed is `s` mixed with the index by a
//! splitmix64 step (the same independence idea as the campaign runner's
//! `base_seed ^ wp`), so results do not depend on generation order and
//! a resumed generation reproduces exactly the runs it skipped.
//!
//! Outliers: every [`CorpusSpec::outlier_every`]-th point runs with a
//! crippled storage backend (all targets at a few percent capacity).
//! Those runs land far outside the population's percentile bands —
//! they are the ground truth the corpus-wide bounding-box detector is
//! expected to flag.

use crate::io500::{run_io500, Io500Config, Io500Result};
use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::faults::{Fault, FaultPlan, FaultTarget};
use iokc_sim::prelude::{ClusterConfig, PfsConfig, SystemConfig};
use std::collections::BTreeMap;

/// Unix-time base for simulated corpus runs (the paper's submission
/// era; one second per index keeps start times unique and ordered).
const EPOCH: u64 = 1_656_590_400;

/// The sweep specification: how many runs, from which seed, at what
/// workload scale, and how often to plant an outlier.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSpec {
    /// Number of submissions to generate.
    pub runs: usize,
    /// Base seed; every run derives its own seed from it.
    pub seed: u64,
    /// Plant a crippled-backend outlier at every Nth point (`0`
    /// disables outliers). Point indexes where `index % n == n - 1`
    /// are outliers, so small corpora still contain some.
    pub outlier_every: usize,
    /// Per-rank workload scale for each submission.
    pub scale: Io500Config,
}

impl CorpusSpec {
    /// A spec with the default outlier cadence (every 32nd point) and
    /// the tiny per-rank scale that makes 10k-run corpora practical.
    #[must_use]
    pub fn new(runs: usize, seed: u64) -> CorpusSpec {
        CorpusSpec {
            runs,
            seed,
            outlier_every: 32,
            scale: CorpusSpec::tiny_scale(),
        }
    }

    /// The corpus workload scale: a complete 12-phase IO500 run kept
    /// small enough that one submission simulates in milliseconds.
    #[must_use]
    pub fn tiny_scale() -> Io500Config {
        Io500Config {
            dir: "/c".to_owned(),
            ior_easy_bytes_per_rank: 256 << 10,
            ior_hard_writes_per_rank: 8,
            mdtest_easy_files_per_rank: 12,
            mdtest_hard_files_per_rank: 8,
        }
    }

    /// A deterministic fingerprint of everything that shapes the sweep
    /// — the campaign-journal header value, so a resume onto a changed
    /// spec is rejected instead of silently mixing corpora.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.seed);
        eat(self.outlier_every as u64);
        eat(self.scale.ior_easy_bytes_per_rank);
        eat(self.scale.ior_hard_writes_per_rank);
        eat(self.scale.mdtest_easy_files_per_rank);
        eat(self.scale.mdtest_hard_files_per_rank);
        // Deliberately excludes `runs`: growing a corpus in place is a
        // resume, not a different campaign.
        hash
    }

    /// The parameter point at `index`.
    #[must_use]
    pub fn point(&self, index: usize) -> CorpusPoint {
        let shape = SHAPES[index % SHAPES.len()];
        let pfs = PFS_VARIANTS[(index / SHAPES.len()) % PFS_VARIANTS.len()];
        let tasks = TASKS[(index / (SHAPES.len() * PFS_VARIANTS.len())) % TASKS.len()];
        let fault_mix = FAULT_MIXES[index % FAULT_MIXES.len()];
        let outlier =
            self.outlier_every != 0 && index % self.outlier_every == self.outlier_every - 1;
        CorpusPoint {
            index,
            seed: self.seed ^ splitmix64(index as u64),
            shape,
            pfs,
            tasks,
            fault_mix,
            outlier,
        }
    }

    /// Simulate point `index`: build the world, run the 12 phases,
    /// render the official result block.
    pub fn execute(&self, index: usize) -> Result<CorpusRun, SimError> {
        let point = self.point(index);
        let mut world = World::new(point.system(), point.fault_plan(), point.seed);
        let layout = JobLayout::new(point.tasks, point.tasks.min(4));
        let result = run_io500(&mut world, layout, &self.scale)?;
        Ok(CorpusRun {
            output: result.render(),
            result,
            start_time: EPOCH + index as u64,
            point,
        })
    }
}

/// Mix the index into the base seed (splitmix64's finalizer), so
/// adjacent points get decorrelated worlds.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Cluster shapes the sweep cycles through.
const SHAPES: [&str; 3] = ["fuchs", "mid", "edge"];
/// File-system variants the sweep cycles through.
const PFS_VARIANTS: [&str; 3] = ["hdd", "balanced", "flash"];
/// Rank counts the sweep cycles through.
const TASKS: [u32; 3] = [4, 8, 16];
/// Fault mixes the sweep cycles through.
const FAULT_MIXES: [&str; 4] = ["none", "congestion", "slow-target", "degraded-node"];

/// One fully-resolved sweep point: what world run `index` simulates.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusPoint {
    /// Position in the sweep.
    pub index: usize,
    /// The world seed derived for this point.
    pub seed: u64,
    /// Cluster shape name (`fuchs` / `mid` / `edge`).
    pub shape: &'static str,
    /// File-system variant name (`hdd` / `balanced` / `flash`).
    pub pfs: &'static str,
    /// MPI rank count.
    pub tasks: u32,
    /// Fault mix name (`none` / `congestion` / `slow-target` /
    /// `degraded-node`).
    pub fault_mix: &'static str,
    /// Whether this point runs with the crippled backend.
    pub outlier: bool,
}

impl CorpusPoint {
    /// The simulated system for this point.
    #[must_use]
    pub fn system(&self) -> SystemConfig {
        let cluster = match self.shape {
            "fuchs" => ClusterConfig::fuchs_csc(),
            "mid" => ClusterConfig {
                name: "mid-cluster".to_owned(),
                nodes: 32,
                ..ClusterConfig::fuchs_csc()
            },
            _ => ClusterConfig {
                name: "edge-cluster".to_owned(),
                nodes: 8,
                nic_bandwidth: 2.5e9,
                fabric_bandwidth: 8.0e9,
                ..ClusterConfig::fuchs_csc()
            },
        };
        let pfs = match self.pfs {
            "hdd" => PfsConfig {
                storage_targets: 4,
                target_bandwidth: 3.0e8,
                target_read_bandwidth: 3.2e8,
                mds_ops_per_sec: 12_000.0,
                ..PfsConfig::beegfs_fuchs()
            },
            "balanced" => PfsConfig::beegfs_fuchs(),
            _ => PfsConfig {
                storage_targets: 8,
                target_bandwidth: 1.6e9,
                target_read_bandwidth: 1.8e9,
                target_op_overhead_ns: 30_000,
                mds_ops_per_sec: 60_000.0,
                ..PfsConfig::beegfs_fuchs()
            },
        };
        SystemConfig {
            cluster,
            pfs,
            noise_sigma: 0.06,
            noise_interval_ns: 100_000_000,
        }
    }

    /// The fault plan for this point. Outliers override the mix with a
    /// storage backend running at a few percent of capacity.
    #[must_use]
    pub fn fault_plan(&self) -> FaultPlan {
        if self.outlier {
            let mut plan = FaultPlan::none();
            for target in 0..8 {
                plan.push(Fault::permanent(FaultTarget::StorageTarget(target), 0.04));
            }
            plan.push(Fault::permanent(FaultTarget::MetadataServer(0), 0.05));
            return plan;
        }
        match self.fault_mix {
            "congestion" => FaultPlan::none().with(Fault::permanent(FaultTarget::Fabric, 0.85)),
            "slow-target" => {
                FaultPlan::none().with(Fault::permanent(FaultTarget::StorageTarget(0), 0.6))
            }
            "degraded-node" => {
                FaultPlan::none().with(Fault::permanent(FaultTarget::NodeNic(0), 0.7))
            }
            _ => FaultPlan::none(),
        }
    }

    /// Provenance metadata for this point, attached to the submission's
    /// artifact so the extractor records it in the knowledge object's
    /// options map.
    #[must_use]
    pub fn params(&self) -> BTreeMap<String, String> {
        let mut params = BTreeMap::new();
        params.insert("corpus_index".to_owned(), self.index.to_string());
        params.insert("corpus_shape".to_owned(), self.shape.to_owned());
        params.insert("corpus_pfs".to_owned(), self.pfs.to_owned());
        params.insert("corpus_faults".to_owned(), self.fault_mix.to_owned());
        params.insert("corpus_outlier".to_owned(), self.outlier.to_string());
        params
    }
}

/// One generated submission: the rendered official result block plus
/// everything an ingester needs to route it through the extract path.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusRun {
    /// The resolved sweep point.
    pub point: CorpusPoint,
    /// The structured result (scores, phases).
    pub result: Io500Result,
    /// The official rendered result block — extractor input.
    pub output: String,
    /// Simulated submission time (unix seconds).
    pub start_time: u64,
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn points_are_deterministic_and_cover_the_sweep() {
        let spec = CorpusSpec::new(64, 42);
        let again = CorpusSpec::new(64, 42);
        let mut shapes = std::collections::BTreeSet::new();
        let mut pfs = std::collections::BTreeSet::new();
        let mut mixes = std::collections::BTreeSet::new();
        for i in 0..64 {
            assert_eq!(spec.point(i), again.point(i));
            shapes.insert(spec.point(i).shape);
            pfs.insert(spec.point(i).pfs);
            mixes.insert(spec.point(i).fault_mix);
        }
        assert_eq!(shapes.len(), SHAPES.len());
        assert_eq!(pfs.len(), PFS_VARIANTS.len());
        assert_eq!(mixes.len(), FAULT_MIXES.len());
        // Different seeds give different worlds.
        assert_ne!(spec.point(0).seed, CorpusSpec::new(64, 43).point(0).seed);
    }

    #[test]
    fn outlier_cadence_matches_spec() {
        let spec = CorpusSpec::new(96, 7);
        let outliers: Vec<usize> = (0..96).filter(|&i| spec.point(i).outlier).collect();
        assert_eq!(outliers, vec![31, 63, 95]);
        let mut off = spec.clone();
        off.outlier_every = 0;
        assert!((0..96).all(|i| !off.point(i).outlier));
    }

    #[test]
    fn execution_is_deterministic_and_renders_official_output() {
        let spec = CorpusSpec::new(8, 1234);
        let a = spec.execute(3).unwrap();
        let b = spec.execute(3).unwrap();
        assert_eq!(a, b, "same spec + index must reproduce bit-identical runs");
        assert!(a.output.contains("[RESULT]"));
        assert!(a.output.contains("[SCORE ]"));
        assert!(a.result.total_score > 0.0);
    }

    #[test]
    fn outlier_runs_score_far_below_their_healthy_twin() {
        let mut spec = CorpusSpec::new(8, 99);
        spec.outlier_every = 1; // every point an outlier
        let outlier = spec.execute(0).unwrap();
        spec.outlier_every = 0;
        let healthy = spec.execute(0).unwrap();
        assert!(
            outlier.result.total_score < healthy.result.total_score * 0.5,
            "crippled backend must visibly depress the score: {} vs {}",
            outlier.result.total_score,
            healthy.result.total_score
        );
    }

    #[test]
    fn fingerprint_tracks_spec_shape_but_not_run_count() {
        let a = CorpusSpec::new(64, 42);
        let mut b = CorpusSpec::new(10_000, 42);
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.seed = 43;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut c = CorpusSpec::new(64, 42);
        c.scale.ior_hard_writes_per_rank = 9;
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
