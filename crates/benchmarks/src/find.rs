//! The IO500 `find` phase.
//!
//! After the write phases, IO500 runs a parallel `find` across everything
//! the benchmark created, matching files by size/timestamp. In this model
//! the cost is what matters: directory listings plus a `stat` per matched
//! candidate, partitioned across ranks.

use iokc_sim::engine::{JobLayout, SimError, World};
use iokc_sim::script::ScriptSet;

/// Result of the find phase.
#[derive(Debug, Clone, PartialEq)]
pub struct FindResult {
    /// Files examined (stat'ed).
    pub matched: u64,
    /// Directories traversed.
    pub dirs: u64,
    /// Rate in files/s.
    pub rate: f64,
    /// Elapsed seconds.
    pub elapsed_s: f64,
}

/// Run `find` over every directory below `root`, stat-ing each file whose
/// path contains `name_filter` (empty string matches everything).
pub fn run_find(
    world: &mut World,
    layout: JobLayout,
    root: &str,
    name_filter: &str,
) -> Result<FindResult, SimError> {
    // Snapshot the tree up front (a real find discovers it incrementally;
    // the op cost of the discovery is the readdirs below).
    let mut dirs = vec![root.to_owned()];
    let mut files = Vec::new();
    let mut frontier = vec![root.to_owned()];
    while let Some(dir) = frontier.pop() {
        let children: Vec<String> = world
            .namespace()
            .list_dir(&dir)
            .map(str::to_owned)
            .collect();
        for child in children {
            if world.namespace().is_dir(&child) {
                dirs.push(child.clone());
                frontier.push(child);
            } else if name_filter.is_empty() || child.contains(name_filter) {
                files.push(child);
            }
        }
    }

    let np = layout.np;
    let mut set = ScriptSet::new(np);
    // Readdir work: directories round-robin across ranks.
    for (i, dir) in dirs.iter().enumerate() {
        let rank = (i as u32) % np;
        set.rank(rank).readdir(dir);
    }
    // Stat work: files round-robin across ranks.
    for (i, file) in files.iter().enumerate() {
        let rank = (i as u32) % np;
        set.rank(rank).stat(file);
    }
    for rank in 0..np {
        set.rank(rank).barrier();
    }
    let result = world.run(layout, &set)?;
    let elapsed_s = result.wall().as_secs_f64().max(1e-9);
    Ok(FindResult {
        matched: files.len() as u64,
        dirs: dirs.len() as u64,
        rate: files.len() as f64 / elapsed_s,
        elapsed_s,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_sim::config::SystemConfig;
    use iokc_sim::faults::FaultPlan;
    use iokc_sim::script::{OpenMode, ScriptSet};

    #[test]
    fn find_counts_and_rates() {
        let mut w = World::new(SystemConfig::test_small(), FaultPlan::none(), 9);
        let mut setup = ScriptSet::new(1);
        setup.rank(0).mkdir("/scratch/tree");
        for i in 0..30 {
            let path = format!("/scratch/tree/file.mdtest.{i}");
            setup.rank(0).open(&path, OpenMode::Write);
            setup.rank(0).close(&path);
        }
        setup.rank(0).mkdir("/scratch/tree/sub");
        setup
            .rank(0)
            .open("/scratch/tree/sub/other", OpenMode::Write);
        setup.rank(0).close("/scratch/tree/sub/other");
        w.run(JobLayout::new(1, 1), &setup).unwrap();

        let all = run_find(&mut w, JobLayout::new(2, 2), "/scratch/tree", "").unwrap();
        assert_eq!(all.matched, 31);
        assert_eq!(all.dirs, 2);
        assert!(all.rate > 0.0);

        let filtered = run_find(&mut w, JobLayout::new(2, 2), "/scratch/tree", "mdtest").unwrap();
        assert_eq!(filtered.matched, 30);
    }

    #[test]
    fn find_rate_bounded_by_metadata_capacity() {
        let mut w = World::new(SystemConfig::test_small(), FaultPlan::none(), 10);
        let mut setup = ScriptSet::new(2);
        setup.rank(0).mkdir("/scratch/big");
        for i in 0..300 {
            let path = format!("/scratch/big/f{i}");
            setup.rank(0).open(&path, OpenMode::Write);
            setup.rank(0).close(&path);
        }
        w.run(JobLayout::new(2, 2), &setup).unwrap();
        let result = run_find(&mut w, JobLayout::new(2, 2), "/scratch/big", "").unwrap();
        assert_eq!(result.matched, 300);
        let cap = w.system().pfs.mds_ops_per_sec * f64::from(w.system().pfs.metadata_servers);
        assert!(
            result.rate < cap * 1.5,
            "find rate {} vs MDS cap {cap}",
            result.rate
        );
        assert!(
            result.rate > 1000.0,
            "find rate {} implausibly low",
            result.rate
        );
    }

    #[test]
    fn empty_tree_finds_nothing() {
        let mut w = World::new(SystemConfig::test_small(), FaultPlan::none(), 9);
        let result = run_find(&mut w, JobLayout::new(1, 1), "/scratch", "").unwrap();
        assert_eq!(result.matched, 0);
        assert_eq!(result.dirs, 1);
    }
}
