//! `iokc-benchmarks` — reimplementations of the community benchmarks the
//! paper's knowledge-generation phase drives (§V-A): IOR, mdtest, HACC-IO,
//! the IO500 suite and its `find` phase, plus a Darshan instrumentation
//! adapter.
//!
//! Every driver compiles rank behaviour into [`iokc_sim`] scripts,
//! executes them on a simulated system, and renders results in the
//! original tool's output format so the knowledge extractor parses the
//! same text a real deployment would produce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod campaign;
pub mod corpus;
pub mod find;
pub mod generators;
pub mod hacc;
pub mod instrument;
pub mod io500;
pub mod ior;
pub mod ior_output;
pub mod mdtest;

pub use campaign::{CampaignRunner, SimCampaignRunner};
pub use corpus::{CorpusPoint, CorpusRun, CorpusSpec};
pub use find::{run_find, FindResult};
pub use generators::{HaccGenerator, Io500Generator, IorGenerator, MdtestGenerator};
pub use hacc::{run_hacc, FileMode, HaccConfig, HaccResult, BYTES_PER_PARTICLE};
pub use instrument::{darshan_from_phases, InstrumentOptions};
pub use io500::{
    run_io500, run_io500_with_faults, Io500Config, Io500Phase, Io500Result, PhaseFaults, PhaseUnit,
};
pub use ior::{run_ior, Access, IorConfig, IorParseError, IorRunResult};
pub use ior_output::IorSample;
pub use mdtest::{run_mdtest, MdPhase, MdWorkload, MdtestConfig, MdtestParseError, MdtestResult};
