//! Campaign runner hooks: simulated benchmark steps for the supervised
//! sweep executor.
//!
//! [`iokc_jube::run_campaign`] is benchmark-agnostic — it asks a runner
//! factory for a fresh runner per workpackage attempt. This module
//! supplies that runner for the simulated system: each step command is
//! parsed as an IOR or mdtest invocation, executed in its own simulated
//! world (seeded per workpackage so campaigns are reproducible), and
//! reported back with the world's virtual clock so per-workpackage
//! deadlines are deterministic in tests.
//!
//! Fault-harness tests plug in a shared [`CrashSchedule`]: before a
//! workpackage's first step runs, the schedule decides whether this
//! worker "dies" mid-workpackage ([`iokc_sim::faults::CrashSchedule::tick_worker`]),
//! producing the transient failure shape the supervisor retries.

use crate::ior::{run_ior, IorConfig};
use crate::mdtest::{run_mdtest, MdtestConfig};
use iokc_jube::{StepFailure, StepOutcome};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::{CrashSchedule, FaultPlan};
use iokc_sim::prelude::SystemConfig;
use std::sync::{Arc, Mutex};

/// A boxed campaign step runner, as consumed by
/// [`iokc_jube::run_campaign`]'s runner factory.
pub type CampaignRunner =
    Box<dyn FnMut(usize, &str, &str) -> Result<StepOutcome, StepFailure> + Send>;

/// Builds per-attempt step runners that execute sweep commands on the
/// simulated FUCHS-CSC system.
#[derive(Clone)]
pub struct SimCampaignRunner {
    /// Base seed; each workpackage runs in a world seeded
    /// `base_seed ^ wp`, so results are reproducible per combination
    /// and independent of execution order.
    pub base_seed: u64,
    /// MPI tasks per workpackage run.
    pub tasks: u32,
    /// Processes per node (clamped to `tasks`).
    pub ppn: u32,
    /// Optional worker-kill schedule shared with a fault harness.
    pub crashes: Option<Arc<Mutex<CrashSchedule>>>,
}

impl SimCampaignRunner {
    /// A runner with no fault injection.
    #[must_use]
    pub fn new(base_seed: u64, tasks: u32, ppn: u32) -> SimCampaignRunner {
        SimCampaignRunner {
            base_seed,
            tasks,
            ppn,
            crashes: None,
        }
    }

    /// Attach a worker-kill schedule (builder style).
    #[must_use]
    pub fn with_crashes(mut self, crashes: Arc<Mutex<CrashSchedule>>) -> SimCampaignRunner {
        self.crashes = Some(crashes);
        self
    }

    /// One fresh runner, for one workpackage attempt. Pass
    /// `|| hooks.runner()` as the campaign's runner factory.
    #[must_use]
    pub fn runner(&self) -> CampaignRunner {
        let base_seed = self.base_seed;
        let tasks = self.tasks;
        let ppn = self.ppn.min(self.tasks).max(1);
        let crashes = self.crashes.clone();
        let mut ticked = false;
        Box::new(move |wp: usize, _step: &str, command: &str| {
            // One crash decision per attempt, taken before the first
            // step: a killed worker produces no output at all.
            if !ticked {
                ticked = true;
                if let Some(schedule) = &crashes {
                    let killed = schedule
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .tick_worker(wp as u64);
                    if killed {
                        return Err(StepFailure::worker_crash());
                    }
                }
            }
            run_sim_step(base_seed ^ wp as u64, tasks, ppn, command)
        })
    }
}

/// Execute one step command in a fresh simulated world and capture its
/// output and virtual elapsed time.
fn run_sim_step(
    seed: u64,
    tasks: u32,
    ppn: u32,
    command: &str,
) -> Result<StepOutcome, StepFailure> {
    let mut world = World::new(SystemConfig::fuchs_csc(), FaultPlan::none(), seed);
    let layout = JobLayout::new(tasks, ppn);
    let output = if command.trim_start().starts_with("mdtest") {
        let config = MdtestConfig::parse_command(command)
            .map_err(|e| StepFailure::permanent(e.to_string()))?;
        ensure_dirs(&mut world, &format!("{}/x", config.dir))?;
        run_mdtest(&mut world, layout, &config)
            .map_err(|e| StepFailure::transient(e.to_string()))?
            .render()
    } else {
        let config =
            IorConfig::parse_command(command).map_err(|e| StepFailure::permanent(e.to_string()))?;
        ensure_dirs(&mut world, &config.test_file)?;
        run_ior(&mut world, layout, &config, seed)
            .map_err(|e| StepFailure::transient(e.to_string()))?
            .render()
    };
    Ok(StepOutcome {
        output,
        virtual_ms: world.now().nanos() / 1_000_000,
    })
}

/// Create every missing parent directory of `path` in the simulated
/// namespace.
fn ensure_dirs(world: &mut World, path: &str) -> Result<(), StepFailure> {
    let mut missing = Vec::new();
    let mut dir = iokc_sim::script::parent_dir(path).to_owned();
    while dir != "/" && !world.namespace().is_dir(&dir) {
        missing.push(dir.clone());
        dir = iokc_sim::script::parent_dir(&dir).to_owned();
    }
    if missing.is_empty() {
        return Ok(());
    }
    let mut scripts = iokc_sim::script::ScriptSet::new(1);
    for dir in missing.iter().rev() {
        scripts.rank(0).mkdir(dir);
    }
    world
        .run(JobLayout::new(1, 1), &scripts)
        .map(|_| ())
        .map_err(|e| StepFailure::transient(e.to_string()))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_jube::{run_campaign, CampaignOptions, JubeConfig};

    const CONFIG: &str = "\
benchmark ior-campaign
param xfer = 1m, 2m
step run = ior -a mpiio -t $xfer -b 4m -s 2 -i 1 -o /scratch/c$wp/t -k
pattern write_bw = Max Write: {bw:f} MiB/sec
";

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("iokc-bench-camp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sim_runner_drives_a_campaign_with_virtual_time() {
        let config = JubeConfig::parse(CONFIG).expect("valid config");
        let hooks = SimCampaignRunner::new(42, 8, 4);
        let dir = scratch("ok");
        let report = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            hooks.runner()
        })
        .expect("campaign");
        assert!(report.summary.is_complete(), "{}", report.summary);
        let series = report.workspace.metric_series(&config, "write_bw");
        assert_eq!(series.len(), 2);
        assert!(series.iter().all(|(_, bw)| *bw > 0.0));
        // The simulated world reported a virtual clock, so the journal
        // carries deterministic elapsed times.
        let state = iokc_jube::campaign::replay(&iokc_jube::journal_path(&dir)).expect("replay");
        assert!(state.done.values().all(|d| d.elapsed_ms > 0));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn crash_schedule_kills_workers_and_the_supervisor_recovers() {
        let config = JubeConfig::parse(CONFIG).expect("valid config");
        // Kill workpackage 1's first two attempts.
        let crashes = Arc::new(Mutex::new(CrashSchedule::at_workpackages(&[
            (1, 0),
            (1, 1),
        ])));
        let hooks = SimCampaignRunner::new(42, 8, 4).with_crashes(Arc::clone(&crashes));
        let dir = scratch("crash");
        let options = CampaignOptions {
            retry: iokc_core::resilience::RetryPolicy::with_retries(3),
            ..CampaignOptions::default()
        };
        let report = run_campaign(&config, &dir, &options, || hooks.runner()).expect("campaign");
        assert!(report.summary.is_complete(), "{}", report.summary);
        assert_eq!(report.summary.retried, 1, "wp 1 needed retries");
        let ticks = crashes.lock().expect("schedule lock").worker_calls(1);
        assert_eq!(ticks, 3, "two kills plus the surviving attempt");
        // The crash-free result is identical to a crash-free campaign:
        // retries re-run in fresh worlds with the same per-wp seed.
        let clean_dir = scratch("clean");
        let clean = run_campaign(&config, &clean_dir, &CampaignOptions::default(), || {
            SimCampaignRunner::new(42, 8, 4).runner()
        })
        .expect("clean campaign");
        assert_eq!(
            report.workspace.result_table(&config).render(),
            clean.workspace.result_table(&config).render()
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
        std::fs::remove_dir_all(&clean_dir).expect("cleanup");
    }

    #[test]
    fn mdtest_commands_are_dispatched_by_prefix() {
        let config = JubeConfig::parse(
            "benchmark md\nparam n = 100\nstep run = mdtest -n $n -d /scratch/md$wp -u\n\
             pattern create = {v:f} file creations per second",
        )
        .expect("valid config");
        let hooks = SimCampaignRunner::new(7, 4, 4);
        let dir = scratch("mdtest");
        let report = run_campaign(&config, &dir, &CampaignOptions::default(), || {
            hooks.runner()
        })
        .expect("campaign");
        assert!(report.summary.is_complete(), "{}", report.summary);
        assert!(report.workspace.workpackages[0].outputs[0]
            .1
            .contains("File creation"));
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
