//! New-knowledge generation: benchmark configuration creation (§V-E1).
//!
//! "The user can apply the generated command to re-run the workflow.
//! First, the previously applied command is selected and then loaded from
//! the corresponding configuration in the view and can be modified as
//! required. Afterward, the new command can be created by clicking
//! 'create configuration'." — [`CommandBuilder`] is that dialog as an
//! API: load a stored command, mutate parameters, emit the new command
//! (or a JUBE configuration that sweeps it).

use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{CycleError, Finding, UsageModule, UsageOutcome};
use std::collections::BTreeMap;

/// A parsed, editable command form (tool name + flag map).
///
/// ```
/// use iokc_usage::CommandBuilder;
///
/// let mut builder = CommandBuilder::load("ior -a mpiio -b 4m -t 2m -F -k");
/// builder.set("-b", "8m").remove("-k").enable("-e");
/// assert_eq!(builder.build(), "ior -a mpiio -b 8m -t 2m -F -e");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CommandBuilder {
    tool: String,
    /// Flags with values, in first-seen order.
    options: Vec<(String, Option<String>)>,
}

impl CommandBuilder {
    /// Load a command line into the editable form. Values are any token
    /// not starting with `-` that follows a flag.
    #[must_use]
    pub fn load(command: &str) -> CommandBuilder {
        let mut tokens = command.split_whitespace();
        let tool = tokens.next().unwrap_or("ior").to_owned();
        let mut options: Vec<(String, Option<String>)> = Vec::new();
        let mut pending: Option<String> = None;
        for token in tokens {
            if let Some(flag) = token.strip_prefix('-') {
                if let Some(prev) = pending.take() {
                    options.push((prev, None));
                }
                pending = Some(format!("-{flag}"));
            } else if let Some(flag) = pending.take() {
                options.push((flag, Some(token.to_owned())));
            }
        }
        if let Some(flag) = pending {
            options.push((flag, None));
        }
        CommandBuilder { tool, options }
    }

    /// Current value of a flag.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Is a boolean flag present?
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.options.iter().any(|(f, _)| f == flag)
    }

    /// Set (or add) a flag with a value.
    pub fn set(&mut self, flag: &str, value: &str) -> &mut Self {
        if let Some(slot) = self.options.iter_mut().find(|(f, _)| f == flag) {
            slot.1 = Some(value.to_owned());
        } else {
            self.options.push((flag.to_owned(), Some(value.to_owned())));
        }
        self
    }

    /// Enable a boolean flag.
    pub fn enable(&mut self, flag: &str) -> &mut Self {
        if !self.has(flag) {
            self.options.push((flag.to_owned(), None));
        }
        self
    }

    /// Remove a flag entirely.
    pub fn remove(&mut self, flag: &str) -> &mut Self {
        self.options.retain(|(f, _)| f != flag);
        self
    }

    /// Emit the command line ("create configuration").
    #[must_use]
    pub fn build(&self) -> String {
        let mut out = self.tool.clone();
        for (flag, value) in &self.options {
            out.push(' ');
            out.push_str(flag);
            if let Some(v) = value {
                out.push(' ');
                out.push_str(v);
            }
        }
        out
    }
}

/// Generate a JUBE-style sweep configuration from a base command: one
/// parameter set per varied flag, Cartesian-expanded by the JUBE engine.
/// Returned as the TOML-like text `iokc-jube` parses.
#[must_use]
pub fn generate_jube_config(
    benchmark_name: &str,
    base_command: &str,
    sweeps: &BTreeMap<String, Vec<String>>,
) -> String {
    let mut builder = CommandBuilder::load(base_command);
    let mut out = String::new();
    out.push_str(&format!("benchmark {benchmark_name}\n"));
    for (flag, values) in sweeps {
        let name = flag.trim_start_matches('-');
        out.push_str(&format!("param {name} = {}\n", values.join(", ")));
        builder.set(flag, &format!("${name}"));
    }
    out.push_str(&format!("step run = {}\n", builder.build()));
    out
}

/// The usage module for Example I: for each analysed command, produce a
/// follow-up command with a doubled block size (the paper's demonstration
/// mutates the loaded configuration and re-runs the workflow).
#[derive(Debug, Clone, Default)]
pub struct RegenerateUsage {
    /// Commands already scheduled (avoid re-scheduling forever).
    seen: std::collections::BTreeSet<String>,
}

/// Select the candidate runs for new-knowledge generation straight from
/// the store: the top `limit` benchmark runs by write bandwidth (the
/// configurations most worth iterating on), chosen via the query
/// engine's summary projection, with full `Knowledge` deserialization
/// only for the runs actually selected.
pub fn select_candidates(
    store: &iokc_store::KnowledgeStore,
    limit: usize,
) -> Result<Vec<KnowledgeItem>, iokc_store::DbError> {
    use iokc_store::{DeadlineToken, Query, RunKind, RunOrder, RunPredicate};
    let top = store.query_summaries(
        &Query::new(RunPredicate::Kind(RunKind::Benchmark))
            .order_by(RunOrder::Bandwidth)
            .descending()
            .limit(limit),
        &DeadlineToken::unbounded(),
    )?;
    let ids: Vec<u64> = top.iter().map(|row| row.id).collect();
    store.query_items(
        &Query::new(RunPredicate::Kind(RunKind::Benchmark).and(RunPredicate::IdIn(ids)))
            .order_by(RunOrder::Bandwidth)
            .descending(),
    )
}

impl RegenerateUsage {
    /// Produce the follow-up command for a knowledge object, if any.
    #[must_use]
    pub fn follow_up(knowledge: &Knowledge) -> Option<String> {
        let mut builder = CommandBuilder::load(&knowledge.command);
        let block = builder.get("-b")?;
        let bytes = iokc_util::units::parse_size(block).ok()?;
        let doubled = bytes.checked_mul(2)?;
        builder.set("-b", &render_size(doubled));
        Some(builder.build())
    }
}

fn render_size(bytes: u64) -> String {
    const MIB: u64 = 1 << 20;
    const KIB: u64 = 1 << 10;
    if bytes.is_multiple_of(MIB) {
        format!("{}m", bytes / MIB)
    } else if bytes.is_multiple_of(KIB) {
        format!("{}k", bytes / KIB)
    } else {
        bytes.to_string()
    }
}

impl UsageModule for RegenerateUsage {
    fn name(&self) -> &str {
        "regenerate-configuration"
    }

    fn apply(
        &mut self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
        _findings: &[Finding],
    ) -> Result<UsageOutcome, CycleError> {
        let mut outcome = UsageOutcome::default();
        for item in items {
            let KnowledgeItem::Benchmark(knowledge) = item else {
                continue;
            };
            if !self.seen.insert(knowledge.command.clone()) {
                continue;
            }
            if let Some(command) = RegenerateUsage::follow_up(knowledge) {
                if !self.seen.contains(&command) {
                    outcome.notes.push(format!(
                        "created configuration `{command}` from `{}`",
                        knowledge.command
                    ));
                    outcome.new_commands.push(command);
                }
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Usage, "test")
    }
    use iokc_core::model::KnowledgeSource;

    const PAPER_CMD: &str =
        "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/fuchs/zhuz/test80 -k";

    #[test]
    fn load_and_rebuild_is_identity() {
        let builder = CommandBuilder::load(PAPER_CMD);
        assert_eq!(builder.build(), PAPER_CMD);
        assert_eq!(builder.get("-b"), Some("4m"));
        assert!(builder.has("-F"));
        assert!(!builder.has("-w"));
    }

    #[test]
    fn mutation_flow() {
        let mut builder = CommandBuilder::load(PAPER_CMD);
        builder
            .set("-b", "8m")
            .set("-t", "4m")
            .remove("-k")
            .enable("-w");
        let command = builder.build();
        assert!(command.contains("-b 8m"));
        assert!(command.contains("-t 4m"));
        assert!(!command.contains("-k"));
        assert!(command.ends_with("-w"));
    }

    #[test]
    fn follow_up_doubles_block() {
        let k = Knowledge::new(KnowledgeSource::Ior, PAPER_CMD);
        let next = RegenerateUsage::follow_up(&k).unwrap();
        assert!(next.contains("-b 8m"), "{next}");
        // Everything else preserved.
        assert!(next.contains("-t 2m"));
        assert!(next.contains("-i 6"));
    }

    #[test]
    fn follow_up_requires_block_flag() {
        let k = Knowledge::new(KnowledgeSource::Mdtest, "mdtest -n 100");
        assert!(RegenerateUsage::follow_up(&k).is_none());
    }

    #[test]
    fn usage_module_schedules_once() {
        let k = Knowledge::new(KnowledgeSource::Ior, "ior -b 4m -t 1m -o /scratch/x");
        let items = vec![KnowledgeItem::Benchmark(k)];
        let mut module = RegenerateUsage::default();
        let first = module.apply(&mut test_ctx(), &items, &[]).unwrap();
        assert_eq!(first.new_commands.len(), 1);
        assert!(first.new_commands[0].contains("-b 8m"));
        let second = module.apply(&mut test_ctx(), &items, &[]).unwrap();
        assert!(second.new_commands.is_empty(), "no duplicate scheduling");
    }

    #[test]
    fn select_candidates_takes_top_bandwidth_runs() {
        use iokc_core::model::OperationSummary;
        let mut store = iokc_store::KnowledgeStore::in_memory();
        for (command, bw) in [
            ("ior -b 4m -t 1m -o /scratch/a", 100.0),
            ("ior -b 8m -t 2m -o /scratch/b", 300.0),
            ("ior -b 2m -t 1m -o /scratch/c", 200.0),
        ] {
            let mut k = Knowledge::new(KnowledgeSource::Ior, command);
            k.summaries.push(OperationSummary {
                operation: "write".into(),
                api: "POSIX".into(),
                max_mib: bw,
                min_mib: bw,
                mean_mib: bw,
                stddev_mib: 0.0,
                mean_ops: bw / 2.0,
                iterations: 1,
            });
            store.save_knowledge(&k).unwrap();
        }
        let candidates = select_candidates(&store, 2).unwrap();
        let commands: Vec<&str> = candidates
            .iter()
            .map(|item| match item {
                KnowledgeItem::Benchmark(k) => k.command.as_str(),
                other => panic!("io500 selected: {other:?}"),
            })
            .collect();
        assert_eq!(
            commands,
            vec![
                "ior -b 8m -t 2m -o /scratch/b",
                "ior -b 2m -t 1m -o /scratch/c"
            ],
        );
        // The selected items are fully deserialized and feed the module.
        let mut module = RegenerateUsage::default();
        let outcome = module.apply(&mut test_ctx(), &candidates, &[]).unwrap();
        assert_eq!(outcome.new_commands.len(), 2);
    }

    #[test]
    fn jube_config_generation() {
        let sweeps = BTreeMap::from([
            ("-t".to_owned(), vec!["1m".to_owned(), "2m".to_owned()]),
            ("-b".to_owned(), vec!["4m".to_owned(), "8m".to_owned()]),
        ]);
        let config = generate_jube_config("ior-sweep", PAPER_CMD, &sweeps);
        assert!(config.contains("benchmark ior-sweep"));
        assert!(config.contains("param b = 4m, 8m"));
        assert!(config.contains("param t = 1m, 2m"));
        assert!(config.contains("-b $b"));
        assert!(config.contains("-t $t"));
    }
}
