//! `iokc-usage` — the knowledge usage phase (Phase V, §V-E and §IV).
//!
//! The concrete use cases of the knowledge cycle:
//!
//! * [`confgen`] — new-knowledge generation: load a stored command,
//!   mutate it, emit the next configuration (Example I) or a JUBE sweep;
//! * [`mod@recommend`] — the rule-based recommendation module for offline
//!   I/O optimization;
//! * [`predict`] — linear-regression performance prediction (§VI);
//! * [`workload`] — synthetic workload generation from observed patterns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

pub mod confgen;
pub mod predict;
pub mod recommend;
pub mod workload;

pub use confgen::{generate_jube_config, select_candidates, CommandBuilder, RegenerateUsage};
pub use predict::{
    fit, pattern_features, train_bandwidth_model, FitError, LinearModel, PATTERN_FEATURE_NAMES,
};
pub use recommend::{recommend, Recommendation, RecommendationUsage};
pub use workload::{derive_workload, WorkloadComponent, WorkloadSpec};
