//! I/O performance prediction by linear regression (§VI: "the knowledge
//! objects can be used as training data for linear regression analysis to
//! make I/O performance predictions").
//!
//! Ordinary least squares over engineered features of the I/O pattern.
//! The solver is a from-scratch Gaussian elimination with partial
//! pivoting on the normal equations plus ridge damping for stability —
//! sufficient for the handful of features the knowledge object exposes.

use iokc_core::model::Knowledge;

/// A trained linear model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Feature names (for reporting), intercept excluded.
    pub features: Vec<String>,
    /// Coefficients; index 0 is the intercept.
    pub coefficients: Vec<f64>,
    /// Coefficient of determination on the training set.
    pub r_squared: f64,
    /// Training sample count.
    pub samples: usize,
}

impl LinearModel {
    /// Predict from a raw feature vector (length = `features.len()`).
    #[must_use]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(features.len(), self.features.len(), "feature arity");
        self.coefficients[0]
            + self.coefficients[1..]
                .iter()
                .zip(features)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// Human-readable model summary.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "linear model (n = {}, R² = {:.4})\n  intercept: {:.4}\n",
            self.samples, self.r_squared, self.coefficients[0]
        );
        for (name, coefficient) in self.features.iter().zip(&self.coefficients[1..]) {
            out.push_str(&format!("  {name}: {coefficient:.6}\n"));
        }
        out
    }
}

/// Errors from model fitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are documented by the variant docs
pub enum FitError {
    /// Fewer samples than coefficients.
    TooFewSamples { samples: usize, needed: usize },
    /// The normal-equation system is singular beyond repair.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewSamples { samples, needed } => {
                write!(f, "too few samples: {samples} < {needed}")
            }
            FitError::Singular => write!(f, "singular design matrix"),
        }
    }
}

impl std::error::Error for FitError {}

/// Fit OLS with a tiny ridge term. `xs[i]` is sample i's feature vector;
/// `ys[i]` its target.
pub fn fit(feature_names: &[&str], xs: &[Vec<f64>], ys: &[f64]) -> Result<LinearModel, FitError> {
    let nfeat = feature_names.len();
    let ncoef = nfeat + 1;
    let n = xs.len();
    if n < ncoef {
        return Err(FitError::TooFewSamples {
            samples: n,
            needed: ncoef,
        });
    }
    assert_eq!(n, ys.len(), "xs and ys length");

    // Normal equations: (XᵀX + λI) β = Xᵀy with X = [1 | features].
    let mut xtx = vec![vec![0.0f64; ncoef]; ncoef];
    let mut xty = vec![0.0f64; ncoef];
    for (x, y) in xs.iter().zip(ys) {
        assert_eq!(x.len(), nfeat, "feature arity");
        let mut row = Vec::with_capacity(ncoef);
        row.push(1.0);
        row.extend_from_slice(x);
        for i in 0..ncoef {
            xty[i] += row[i] * y;
            for j in 0..ncoef {
                xtx[i][j] += row[i] * row[j];
            }
        }
    }
    let ridge = 1e-9 * (n as f64);
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += ridge;
    }

    let coefficients = solve(xtx, xty).ok_or(FitError::Singular)?;

    // R² on the training data.
    let mean_y = iokc_util::stats::mean(ys);
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let predicted = coefficients[0]
            + coefficients[1..]
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>();
        ss_res += (y - predicted) * (y - predicted);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r_squared = if ss_tot <= f64::EPSILON {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };

    Ok(LinearModel {
        features: feature_names.iter().map(|s| (*s).to_owned()).collect(),
        coefficients,
        r_squared,
        samples: n,
    })
}

/// Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|i, j| a[*i][col].abs().total_cmp(&a[*j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (cell, pivot_cell) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot_cell;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// The standard feature extraction from a knowledge object for bandwidth
/// prediction: log2(transfer), log2(block), tasks, file-per-proc flag.
#[must_use]
pub fn pattern_features(k: &Knowledge) -> Vec<f64> {
    vec![
        (k.pattern.transfer_size.max(1) as f64).log2(),
        (k.pattern.block_size.max(1) as f64).log2(),
        f64::from(k.pattern.tasks),
        f64::from(u8::from(k.pattern.file_per_proc)),
    ]
}

/// Feature names matching [`pattern_features`].
pub const PATTERN_FEATURE_NAMES: [&str; 4] =
    ["log2_transfer", "log2_block", "tasks", "file_per_proc"];

/// Train a bandwidth predictor for one operation from a knowledge corpus.
pub fn train_bandwidth_model(
    corpus: &[&Knowledge],
    operation: &str,
) -> Result<LinearModel, FitError> {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for k in corpus {
        if let Some(summary) = k.summary(operation) {
            xs.push(pattern_features(k));
            ys.push(summary.mean_mib);
        }
    }
    fit(&PATTERN_FEATURE_NAMES, &xs, &ys)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::{KnowledgeSource, OperationSummary};

    #[test]
    fn recovers_exact_linear_relation() {
        // y = 3 + 2a - b
        let xs: Vec<Vec<f64>> = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, 5.0],
            vec![-1.0, 2.0],
        ];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - x[1]).collect();
        let model = fit(&["a", "b"], &xs, &ys).unwrap();
        assert!((model.coefficients[0] - 3.0).abs() < 1e-6);
        assert!((model.coefficients[1] - 2.0).abs() < 1e-6);
        assert!((model.coefficients[2] + 1.0).abs() < 1e-6);
        assert!(model.r_squared > 0.999_999);
        assert!((model.predict(&[10.0, 4.0]) - 19.0).abs() < 1e-5);
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let mut rng = 123456789u64;
        let mut noise = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng >> 33) as f64 / 2f64.powi(31) - 0.5) * 4.0
        };
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![f64::from(i)]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 5.0 + 0.8 * x[0] + noise()).collect();
        let model = fit(&["x"], &xs, &ys).unwrap();
        assert!(model.r_squared > 0.99, "R² = {}", model.r_squared);
        assert!((model.coefficients[1] - 0.8).abs() < 0.05);
    }

    #[test]
    fn too_few_samples_rejected() {
        assert_eq!(
            fit(&["a", "b"], &[vec![1.0, 2.0]], &[3.0]),
            Err(FitError::TooFewSamples {
                samples: 1,
                needed: 3
            })
        );
    }

    #[test]
    fn singular_design_rejected() {
        // Feature b is identically zero and duplicated → singular even
        // with ridge? Ridge rescues collinearity; make it truly degenerate
        // by zero samples variance in every direction with conflicting y.
        let xs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        let ys = vec![1.0, 2.0, 3.0];
        // Ridge keeps it solvable; the fit exists but R² is poor.
        let model = fit(&["a", "b"], &xs, &ys).unwrap();
        assert!(model.r_squared <= 1.0);
    }

    fn knowledge(xfer: u64, block: u64, tasks: u32, fpp: bool, bw: f64) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior");
        k.pattern.transfer_size = xfer;
        k.pattern.block_size = block;
        k.pattern.tasks = tasks;
        k.pattern.file_per_proc = fpp;
        k.summaries.push(OperationSummary {
            operation: "write".into(),
            api: "POSIX".into(),
            max_mib: bw,
            min_mib: bw,
            mean_mib: bw,
            stddev_mib: 0.0,
            mean_ops: 0.0,
            iterations: 1,
        });
        k
    }

    #[test]
    fn bandwidth_model_trains_on_corpus() {
        // Construct a corpus where bandwidth grows with log2(transfer).
        let corpus: Vec<Knowledge> = (10..20)
            .map(|p| knowledge(1 << p, 1 << 22, 16, true, 100.0 * f64::from(p)))
            .collect();
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let model = train_bandwidth_model(&refs, "write").unwrap();
        assert!(model.r_squared > 0.99);
        // Prediction is monotone in transfer size here.
        let low = model.predict(&[10.0, 22.0, 16.0, 1.0]);
        let high = model.predict(&[19.0, 22.0, 16.0, 1.0]);
        assert!(high > low);
        let text = model.render();
        assert!(text.contains("log2_transfer"));
    }

    #[test]
    fn model_requires_matching_operation() {
        let corpus: Vec<Knowledge> = (10..20)
            .map(|p| knowledge(1 << p, 1 << 22, 16, true, 100.0))
            .collect();
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        assert!(matches!(
            train_bandwidth_model(&refs, "read"),
            Err(FitError::TooFewSamples { samples: 0, .. })
        ));
    }
}
