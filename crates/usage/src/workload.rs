//! Workload generation (§IV): "the knowledge obtained from our generic
//! workflow can be used to, e.g., generate new benchmark configurations,
//! but also synthetic workload for simulation and thus drive the
//! simulation or initialize new evaluation processes."
//!
//! From a knowledge corpus this module derives a [`WorkloadSpec`] — an
//! abstract mix of access patterns weighted by what the corpus actually
//! observed — and lowers it to concrete benchmark commands.

use iokc_core::model::Knowledge;

/// One synthetic workload component.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadComponent {
    /// I/O interface.
    pub api: String,
    /// Transfer size, bytes.
    pub transfer_size: u64,
    /// Block size, bytes.
    pub block_size: u64,
    /// Segment count.
    pub segments: u64,
    /// File-per-process?
    pub file_per_proc: bool,
    /// Relative weight (fraction of the mix, sums to ~1 across the spec).
    pub weight: f64,
}

/// A synthetic workload: a weighted mix of access patterns plus a task
/// count, derived from observed knowledge.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Task count (median of the corpus).
    pub tasks: u32,
    /// Components, heaviest first.
    pub components: Vec<WorkloadComponent>,
}

/// Derive a workload spec from a corpus. Patterns are grouped by
/// (api, transfer, block, fpp); weights follow observation counts.
#[must_use]
pub fn derive_workload(corpus: &[&Knowledge]) -> Option<WorkloadSpec> {
    if corpus.is_empty() {
        return None;
    }
    let mut groups: Vec<(WorkloadComponent, u32)> = Vec::new();
    let mut tasks: Vec<f64> = Vec::new();
    for k in corpus {
        let p = &k.pattern;
        if p.transfer_size == 0 || p.block_size == 0 {
            continue;
        }
        tasks.push(f64::from(p.tasks));
        let found = groups.iter_mut().find(|(c, _)| {
            c.api == p.api
                && c.transfer_size == p.transfer_size
                && c.block_size == p.block_size
                && c.file_per_proc == p.file_per_proc
        });
        match found {
            Some((_, count)) => *count += 1,
            None => groups.push((
                WorkloadComponent {
                    api: p.api.clone(),
                    transfer_size: p.transfer_size,
                    block_size: p.block_size,
                    segments: p.segments.max(1),
                    file_per_proc: p.file_per_proc,
                    weight: 0.0,
                },
                1,
            )),
        }
    }
    if groups.is_empty() {
        return None;
    }
    let total: u32 = groups.iter().map(|(_, n)| n).sum();
    let mut components: Vec<WorkloadComponent> = groups
        .into_iter()
        .map(|(mut c, n)| {
            c.weight = f64::from(n) / f64::from(total);
            c
        })
        .collect();
    components.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    Some(WorkloadSpec {
        tasks: iokc_util::stats::median(&tasks).round() as u32,
        components,
    })
}

impl WorkloadSpec {
    /// Lower the spec to benchmark commands: one IOR invocation per
    /// component, iteration counts proportional to weight (at least 1).
    #[must_use]
    pub fn to_commands(&self, output_dir: &str, total_iterations: u32) -> Vec<String> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let iterations = ((f64::from(total_iterations) * c.weight).round() as u32).max(1);
                let mut cmd = format!(
                    "ior -a {} -b {} -t {} -s {} -i {} -o {}/synthetic{}",
                    c.api.to_ascii_lowercase(),
                    size(c.block_size),
                    size(c.transfer_size),
                    c.segments,
                    iterations,
                    output_dir,
                    i
                );
                if c.file_per_proc {
                    cmd.push_str(" -F");
                }
                cmd.push_str(" -C -e");
                cmd
            })
            .collect()
    }
}

fn size(bytes: u64) -> String {
    const MIB: u64 = 1 << 20;
    const KIB: u64 = 1 << 10;
    if bytes.is_multiple_of(MIB) {
        format!("{}m", bytes / MIB)
    } else if bytes.is_multiple_of(KIB) {
        format!("{}k", bytes / KIB)
    } else {
        bytes.to_string()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use iokc_core::model::KnowledgeSource;

    fn knowledge(api: &str, xfer: u64, block: u64, fpp: bool, tasks: u32) -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior");
        k.pattern.api = api.into();
        k.pattern.transfer_size = xfer;
        k.pattern.block_size = block;
        k.pattern.segments = 4;
        k.pattern.file_per_proc = fpp;
        k.pattern.tasks = tasks;
        k
    }

    #[test]
    fn derives_weighted_mix() {
        let corpus = [
            knowledge("MPIIO", 2 << 20, 4 << 20, true, 80),
            knowledge("MPIIO", 2 << 20, 4 << 20, true, 80),
            knowledge("MPIIO", 2 << 20, 4 << 20, true, 40),
            knowledge("POSIX", 47_008, 47_008, false, 80),
        ];
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let spec = derive_workload(&refs).unwrap();
        assert_eq!(spec.components.len(), 2);
        assert!((spec.components[0].weight - 0.75).abs() < 1e-9);
        assert_eq!(spec.components[0].api, "MPIIO");
        assert!((spec.components[1].weight - 0.25).abs() < 1e-9);
        assert_eq!(spec.tasks, 80);
    }

    #[test]
    fn lowering_produces_runnable_commands() {
        let corpus = [
            knowledge("MPIIO", 2 << 20, 4 << 20, true, 80),
            knowledge("POSIX", 1 << 20, 8 << 20, false, 80),
        ];
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let spec = derive_workload(&refs).unwrap();
        let commands = spec.to_commands("/scratch/synth", 6);
        assert_eq!(commands.len(), 2);
        assert!(commands[0].starts_with("ior -a "));
        assert!(commands[0].contains("-i 3"));
        assert!(commands.iter().any(|c| c.contains("-F")));
        assert!(commands.iter().any(|c| !c.contains("-F")));
        // Commands must parse back through the IOR front end — verified in
        // the integration tests to avoid a dev-dependency cycle here.
        for c in &commands {
            assert!(c.contains(" -o /scratch/synth"));
        }
    }

    #[test]
    fn empty_or_degenerate_corpus() {
        assert!(derive_workload(&[]).is_none());
        let zero = knowledge("MPIIO", 0, 0, true, 8);
        assert!(derive_workload(&[&zero]).is_none());
    }

    #[test]
    fn weights_sum_to_one() {
        let corpus: Vec<Knowledge> = (0..10)
            .map(|i| knowledge("MPIIO", 1 << (18 + i % 3), 4 << 20, i % 2 == 0, 40))
            .collect();
        let refs: Vec<&Knowledge> = corpus.iter().collect();
        let spec = derive_workload(&refs).unwrap();
        let total: f64 = spec.components.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Sorted heaviest first.
        for pair in spec.components.windows(2) {
            assert!(pair[0].weight >= pair[1].weight);
        }
    }
}
