//! The recommendation module (§IV, I/O optimization use case): "in the
//! offline mode, the users can be suggested with suitable configurations
//! via a recommendation module, which can be applied manually for
//! individual runs."
//!
//! Rule-based suggestions derived from the extracted knowledge: transfer
//! size vs stripe chunk alignment, striping width vs task count, page
//! cache pitfalls, collective I/O for shared files with many ranks per
//! node, and fsync placement.

use iokc_core::ctx::PhaseCtx;
use iokc_core::model::{Knowledge, KnowledgeItem};
use iokc_core::phases::{CycleError, Finding, UsageModule, UsageOutcome};

/// One tuning recommendation.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Short rule identifier.
    pub rule: &'static str,
    /// Human-readable suggestion.
    pub message: String,
}

/// Evaluate all rules against one knowledge object.
#[must_use]
pub fn recommend(k: &Knowledge) -> Vec<Recommendation> {
    let mut out = Vec::new();
    let p = &k.pattern;

    // Rule: unaligned transfers against the stripe chunk.
    if let Some(fs) = &k.filesystem {
        if fs.chunk_size > 0
            && p.transfer_size > 0
            && !p.transfer_size.is_multiple_of(fs.chunk_size)
        {
            out.push(Recommendation {
                rule: "align-transfer-to-chunk",
                message: format!(
                    "transfer size {} is not a multiple of the stripe chunk {}; aligned \
                     transfers avoid read-modify-write and range-lock overhead",
                    iokc_util::units::format_size(p.transfer_size),
                    iokc_util::units::format_size(fs.chunk_size)
                ),
            });
        }
        // Rule: single-target striping with many writers.
        if fs.storage_targets > 0 && fs.storage_targets < 4 && p.tasks >= 16 {
            out.push(Recommendation {
                rule: "widen-striping",
                message: format!(
                    "{} tasks write through only {} storage target(s); increase the stripe \
                     count (e.g. beegfs-ctl --setpattern --numtargets=4) to parallelise",
                    p.tasks, fs.storage_targets
                ),
            });
        }
    }

    // Rule: striping wider than the transfer can keep busy. A
    // synchronous writer with transfer ≤ chunk keeps only one target busy
    // per request, so extra stripe width is wasted (measured in the
    // Fig. 3 ablation).
    if let Some(fs) = &k.filesystem {
        if fs.chunk_size > 0
            && p.transfer_size > 0
            && p.transfer_size <= fs.chunk_size
            && fs.storage_targets > 2
        {
            out.push(Recommendation {
                rule: "stripe-wider-than-transfer",
                message: format!(
                    "transfers of {} touch at most one {} chunk at a time, so striping                      across {} targets adds no parallelism for a synchronous writer;                      enlarge the transfer or reduce the stripe width",
                    iokc_util::units::format_size(p.transfer_size),
                    iokc_util::units::format_size(fs.chunk_size),
                    fs.storage_targets
                ),
            });
        }
    }

    // Rule: the run is too short to measure reliably.
    let per_rank = p.block_size.saturating_mul(p.segments);
    if per_rank > 0 && per_rank < 64 << 20 {
        out.push(Recommendation {
            rule: "run-too-short",
            message: format!(
                "each task moves only {} per iteration; short runs are dominated by                  open/close and startup effects — grow -b or -s for stable numbers",
                iokc_util::units::format_size(per_rank)
            ),
        });
    }

    // Rule: tiny transfers are IOPS-bound.
    if p.transfer_size > 0 && p.transfer_size < 256 * 1024 {
        out.push(Recommendation {
            rule: "increase-transfer-size",
            message: format!(
                "transfer size {} is below 256 KiB; small requests are bounded by \
                 per-request overhead, try larger transfers or collective buffering",
                iokc_util::units::format_size(p.transfer_size)
            ),
        });
    }

    // Rule: shared file + many ranks per node + independent I/O.
    if !p.file_per_proc && !p.collective && p.clients_per_node >= 8 {
        out.push(Recommendation {
            rule: "use-collective-io",
            message: format!(
                "{} ranks per node access a shared file independently; two-phase \
                 collective I/O (-c) aggregates to one writer per node",
                p.clients_per_node
            ),
        });
    }

    // Rule: read results without reordering are page-cache artifacts.
    if !p.reorder_tasks && k.summary("read").is_some() {
        let inflated = match (k.summary("read"), k.summary("write")) {
            (Some(read), Some(write)) => read.mean_mib > write.mean_mib * 3.0,
            _ => false,
        };
        if inflated {
            out.push(Recommendation {
                rule: "reorder-tasks-for-reads",
                message: "read bandwidth is several times the write bandwidth and tasks \
                          were not reordered (-C); results likely measure the page cache, \
                          not the file system"
                    .to_owned(),
            });
        }
    }

    // Rule: no fsync on write benchmarks under-reports durability cost.
    if !p.fsync && k.summary("write").is_some() {
        out.push(Recommendation {
            rule: "enable-fsync",
            message: "writes were not fsync'ed (-e); reported bandwidth may exclude the \
                      cost of data reaching stable storage"
                .to_owned(),
        });
    }

    out
}

/// The recommendation engine as a cycle usage module.
#[derive(Debug, Clone, Default)]
pub struct RecommendationUsage;

impl UsageModule for RecommendationUsage {
    fn name(&self) -> &str {
        "recommendation-module"
    }

    fn apply(
        &mut self,
        _ctx: &mut PhaseCtx,
        items: &[KnowledgeItem],
        _findings: &[Finding],
    ) -> Result<UsageOutcome, CycleError> {
        let mut outcome = UsageOutcome::default();
        for item in items {
            let KnowledgeItem::Benchmark(knowledge) = item else {
                continue;
            };
            for recommendation in recommend(knowledge) {
                outcome.recommendations.push(format!(
                    "[{}] {} (command: {})",
                    recommendation.rule, recommendation.message, knowledge.command
                ));
            }
        }
        Ok(outcome)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn test_ctx() -> PhaseCtx {
        PhaseCtx::detached(iokc_core::phases::PhaseKind::Usage, "test")
    }
    use iokc_core::model::{FilesystemInfo, KnowledgeSource, OperationSummary};

    fn base() -> Knowledge {
        let mut k = Knowledge::new(KnowledgeSource::Ior, "ior -a mpiio");
        k.pattern.api = "MPIIO".into();
        k.pattern.transfer_size = 2 << 20;
        k.pattern.block_size = 4 << 20;
        k.pattern.tasks = 80;
        k.pattern.clients_per_node = 20;
        k.pattern.file_per_proc = true;
        k.pattern.reorder_tasks = true;
        k.pattern.fsync = true;
        k.filesystem = Some(FilesystemInfo {
            fs_type: "BeeGFS".into(),
            entry_type: "file".into(),
            entry_id: "X".into(),
            metadata_node: "meta01".into(),
            chunk_size: 512 * 1024,
            storage_targets: 4,
            raid: "RAID0".into(),
            storage_pool: "Default".into(),
        });
        k
    }

    fn summary(op: &str, bw: f64) -> OperationSummary {
        OperationSummary {
            operation: op.into(),
            api: "MPIIO".into(),
            max_mib: bw,
            min_mib: bw,
            mean_mib: bw,
            stddev_mib: 0.0,
            mean_ops: 0.0,
            iterations: 1,
        }
    }

    #[test]
    fn well_tuned_run_gets_no_recommendations() {
        let k = base();
        assert!(recommend(&k).is_empty(), "{:?}", recommend(&k));
    }

    #[test]
    fn unaligned_transfer_flagged() {
        let mut k = base();
        k.pattern.transfer_size = 47_008;
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "align-transfer-to-chunk"));
        assert!(recs.iter().any(|r| r.rule == "increase-transfer-size"));
    }

    #[test]
    fn narrow_striping_flagged() {
        let mut k = base();
        k.filesystem.as_mut().unwrap().storage_targets = 1;
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "widen-striping"));
    }

    #[test]
    fn shared_independent_flagged() {
        let mut k = base();
        k.pattern.file_per_proc = false;
        k.pattern.collective = false;
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "use-collective-io"));
        // Collective mode silences it.
        k.pattern.collective = true;
        assert!(!recommend(&k).iter().any(|r| r.rule == "use-collective-io"));
    }

    #[test]
    fn cache_inflated_reads_flagged() {
        let mut k = base();
        k.pattern.reorder_tasks = false;
        k.summaries.push(summary("write", 2800.0));
        k.summaries.push(summary("read", 15_000.0));
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "reorder-tasks-for-reads"));
        // Plausible read/write ratio is fine.
        let mut ok = base();
        ok.pattern.reorder_tasks = false;
        ok.summaries.push(summary("write", 2800.0));
        ok.summaries.push(summary("read", 3100.0));
        assert!(!recommend(&ok)
            .iter()
            .any(|r| r.rule == "reorder-tasks-for-reads"));
    }

    #[test]
    fn missing_fsync_flagged() {
        let mut k = base();
        k.pattern.fsync = false;
        k.summaries.push(summary("write", 2800.0));
        assert!(recommend(&k).iter().any(|r| r.rule == "enable-fsync"));
    }

    #[test]
    fn wide_stripe_with_small_transfer_flagged() {
        let mut k = base();
        k.pattern.transfer_size = 256 * 1024; // ≤ 512 KiB chunk
        k.filesystem.as_mut().unwrap().storage_targets = 6;
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "stripe-wider-than-transfer"));
        // Transfer spanning several chunks silences it.
        k.pattern.transfer_size = 2 << 20;
        assert!(!recommend(&k)
            .iter()
            .any(|r| r.rule == "stripe-wider-than-transfer"));
    }

    #[test]
    fn short_run_flagged() {
        let mut k = base();
        k.pattern.block_size = 1 << 20;
        k.pattern.segments = 4; // 4 MiB per rank
        let recs = recommend(&k);
        assert!(recs.iter().any(|r| r.rule == "run-too-short"));
        k.pattern.segments = 128; // 128 MiB per rank
        assert!(!recommend(&k).iter().any(|r| r.rule == "run-too-short"));
    }

    #[test]
    fn usage_module_formats_output() {
        let mut k = base();
        k.pattern.transfer_size = 47_008;
        let outcome = RecommendationUsage
            .apply(&mut test_ctx(), &[KnowledgeItem::Benchmark(k)], &[])
            .unwrap();
        assert!(!outcome.recommendations.is_empty());
        assert!(outcome.recommendations[0].contains("[align-transfer-to-chunk]"));
        assert!(outcome.new_commands.is_empty());
    }
}
