//! `iokc` — the I/O knowledge cycle command line.
//!
//! Drives the five phases end to end on the simulated FUCHS-CSC system:
//!
//! ```text
//! iokc run "ior -a mpiio -b 4m -t 2m -s 40 -F -C -e -i 6 -o /scratch/t -k" --tasks 80
//! iokc io500 --tasks 40
//! iokc list
//! iokc view 1
//! iokc compare --metric write --axis transfer
//! iokc detect
//! iokc recommend 1
//! iokc sql "SELECT command, tasks FROM performances WHERE api = 'MPIIO'"
//! iokc cycle "ior -b 4m -t 1m -s 4 -F -i 2 -o /scratch/c -k" --iterations 3
//! iokc stack
//! ```
//!
//! Knowledge persists in `--db <path>` (default `knowledge.iokc.json`),
//! the "local database" of the paper's Fig. 4.
//!
//! `iokc sweep` runs parameter sweeps as *durable campaigns*: every
//! workpackage state transition is journaled, so a killed campaign
//! resumes with `iokc sweep --resume <dir>`, re-running only unfinished
//! workpackages.

#![warn(clippy::unwrap_used)]

use iokc_analysis::{
    compare_summaries, render_io500, render_knowledge, BoundingBoxDetector,
    IterationVarianceDetector, MetricAxis, OptionAxis, TrendDetector,
};
use iokc_benchmarks::instrument::{darshan_from_phases, InstrumentOptions};
use iokc_benchmarks::{
    run_ior, HaccConfig, HaccGenerator, Io500Config, Io500Generator, IorConfig, IorGenerator,
    MdtestConfig, MdtestGenerator,
};
use iokc_core::cycle::ModuleBox;
use iokc_core::model::KnowledgeItem;
use iokc_core::phases::{Analyzer, CycleError, ErrorClass, Extractor, Finding, PhaseKind};
use iokc_core::resilience::{ResilienceConfig, RetryPolicy};
use iokc_core::{KnowledgeCycle, Observability, PhaseCtx};
use iokc_extract::{
    DarshanExtractor, HaccExtractor, Io500Extractor, IorExtractor, MdtestExtractor,
};
use iokc_obs::{trace as obs_trace, Clock, Event, NullSink, Recorder, VirtualClock};
use iokc_sim::engine::{JobLayout, World};
use iokc_sim::faults::FaultPlan;
use iokc_sim::prelude::SystemConfig;
use iokc_store::{DbError, DeadlineToken, KnowledgeStore, Query, RunKind, RunOrder, RunPredicate};
use iokc_usage::{recommend, RegenerateUsage};
use std::path::PathBuf;
use std::process::ExitCode;

/// How a CLI failure maps to the process exit code — one code per error
/// class, so scripts and schedulers can branch on the kind of failure
/// without scraping stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CliErrorKind {
    /// Unclassified failure (exit 1).
    Other,
    /// Bad flags or arguments; retrying the same invocation cannot help
    /// and the command line itself must change (exit 2).
    Usage,
    /// A transient phase failure — a rerun (or `--retries`) may succeed
    /// (exit 3).
    Transient,
    /// A permanent phase failure — malformed input or unsupported
    /// request (exit 4).
    Permanent,
    /// The knowledge base image failed checksum or decode validation
    /// (exit 5).
    Corrupt,
}

impl CliErrorKind {
    fn exit_code(self) -> u8 {
        match self {
            CliErrorKind::Other => 1,
            CliErrorKind::Usage => 2,
            CliErrorKind::Transient => 3,
            CliErrorKind::Permanent => 4,
            CliErrorKind::Corrupt => 5,
        }
    }

    fn as_str(self) -> &'static str {
        match self {
            CliErrorKind::Other => "error",
            CliErrorKind::Usage => "usage",
            CliErrorKind::Transient => "transient",
            CliErrorKind::Permanent => "permanent",
            CliErrorKind::Corrupt => "corrupt",
        }
    }
}

/// A classified CLI failure: every error leaving `dispatch` carries the
/// class that decides the exit code and the one-line stderr prefix.
#[derive(Debug)]
struct CliError {
    kind: CliErrorKind,
    message: String,
}

impl CliError {
    fn usage(message: impl std::fmt::Display) -> CliError {
        CliError {
            kind: CliErrorKind::Usage,
            message: message.to_string(),
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> CliError {
        CliError {
            kind: CliErrorKind::Other,
            message,
        }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> CliError {
        CliError::from(message.to_owned())
    }
}

/// Classify a store failure: checksum/decode damage is distinct from
/// ordinary I/O or lookup errors so callers can trigger recovery paths.
fn store_err(e: DbError) -> CliError {
    let kind = match &e {
        DbError::Corrupt(_) => CliErrorKind::Corrupt,
        // A full disk clears up when space is freed — schedulers may
        // retry, so it gets the transient exit code.
        DbError::Full(_) => CliErrorKind::Transient,
        _ => CliErrorKind::Permanent,
    };
    CliError {
        kind,
        message: e.to_string(),
    }
}

/// Classify a cycle failure using the phase error taxonomy.
fn cycle_err(e: CycleError) -> CliError {
    let kind = match e.class {
        ErrorClass::Transient => CliErrorKind::Transient,
        ErrorClass::Permanent => CliErrorKind::Permanent,
        ErrorClass::Corrupt => CliErrorKind::Corrupt,
    };
    CliError {
        kind,
        message: e.to_string(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("iokc: {}: {}", error.kind.as_str(), error.message);
            ExitCode::from(error.kind.exit_code())
        }
    }
}

struct Options {
    db: PathBuf,
    tasks: u32,
    ppn: u32,
    seed: u64,
    iterations: u32,
    retries: u32,
    phase_deadline_ms: Option<u64>,
    campaign: Option<PathBuf>,
    resume: Option<PathBuf>,
    max_parallel: usize,
    wp_deadline_ms: Option<u64>,
    quarantine: u32,
    serve_addr: String,
    serve_workers: usize,
    serve_queue: usize,
    serve_cache_bytes: usize,
    serve_ms: Option<u64>,
    request_deadline_ms: u64,
    max_per_peer: usize,
    rate_per_peer: f64,
    max_conns: usize,
    idle_timeout_ms: u64,
    metric: String,
    axis: String,
    filter_api: Option<String>,
    filter_contains: Option<String>,
    filter_kind: Option<String>,
    filter_op: Option<String>,
    min_tasks: Option<u32>,
    max_tasks: Option<u32>,
    min_bw: Option<f64>,
    max_bw: Option<f64>,
    sort: String,
    order_desc: bool,
    limit: Option<usize>,
    offset: usize,
    count_only: bool,
    metrics_out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    repair: bool,
    journal: Option<PathBuf>,
    runs: usize,
    group: String,
    factor: String,
    correlate: Option<String>,
    outliers: bool,
    positional: Vec<String>,
}

impl Options {
    /// Resilience policy for cycle-driving commands, built from
    /// `--retries` and `--phase-deadline`. Backoff jitter is seeded from
    /// `--seed` so reruns are reproducible.
    fn resilience(&self) -> ResilienceConfig {
        ResilienceConfig::new()
            .with_retry(RetryPolicy::with_retries(self.retries).seeded(self.seed))
            .with_phase_deadline_ms(self.phase_deadline_ms)
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        db: PathBuf::from("knowledge.iokc.json"),
        tasks: 80,
        ppn: 20,
        seed: 42,
        iterations: 3,
        retries: 0,
        phase_deadline_ms: None,
        campaign: None,
        resume: None,
        max_parallel: 4,
        wp_deadline_ms: None,
        quarantine: 3,
        serve_addr: "127.0.0.1:7070".to_owned(),
        serve_workers: 4,
        serve_queue: 64,
        serve_cache_bytes: 1 << 20,
        serve_ms: None,
        request_deadline_ms: 30_000,
        max_per_peer: 0,
        rate_per_peer: 0.0,
        max_conns: 0,
        idle_timeout_ms: 5000,
        metric: "write".to_owned(),
        axis: "transfer".to_owned(),
        filter_api: None,
        filter_contains: None,
        filter_kind: None,
        filter_op: None,
        min_tasks: None,
        max_tasks: None,
        min_bw: None,
        max_bw: None,
        sort: "id".to_owned(),
        order_desc: false,
        limit: None,
        offset: 0,
        count_only: false,
        metrics_out: None,
        trace_out: None,
        repair: false,
        journal: None,
        runs: 256,
        group: "api".to_owned(),
        factor: "bw".to_owned(),
        correlate: None,
        outliers: false,
        positional: Vec::new(),
    };
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value for {flag}"))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--db" => opts.db = PathBuf::from(value(&mut i, "--db")?),
            "--tasks" => {
                opts.tasks = value(&mut i, "--tasks")?
                    .parse()
                    .map_err(|_| "bad --tasks".to_owned())?;
            }
            "--ppn" => {
                opts.ppn = value(&mut i, "--ppn")?
                    .parse()
                    .map_err(|_| "bad --ppn".to_owned())?;
            }
            "--seed" => {
                opts.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|_| "bad --seed".to_owned())?;
            }
            "--iterations" => {
                opts.iterations = value(&mut i, "--iterations")?
                    .parse()
                    .map_err(|_| "bad --iterations".to_owned())?;
            }
            "--retries" => {
                opts.retries = value(&mut i, "--retries")?
                    .parse()
                    .map_err(|_| "bad --retries".to_owned())?;
            }
            "--phase-deadline" => {
                opts.phase_deadline_ms = Some(
                    value(&mut i, "--phase-deadline")?
                        .parse()
                        .map_err(|_| "bad --phase-deadline".to_owned())?,
                );
            }
            "--campaign" => opts.campaign = Some(PathBuf::from(value(&mut i, "--campaign")?)),
            "--resume" => opts.resume = Some(PathBuf::from(value(&mut i, "--resume")?)),
            "--max-parallel" => {
                opts.max_parallel = value(&mut i, "--max-parallel")?
                    .parse()
                    .map_err(|_| "bad --max-parallel".to_owned())?;
                if opts.max_parallel == 0 {
                    return Err("--max-parallel must be non-zero".to_owned());
                }
            }
            "--wp-deadline" => {
                opts.wp_deadline_ms = Some(
                    value(&mut i, "--wp-deadline")?
                        .parse()
                        .map_err(|_| "bad --wp-deadline".to_owned())?,
                );
            }
            "--quarantine" => {
                opts.quarantine = value(&mut i, "--quarantine")?
                    .parse()
                    .map_err(|_| "bad --quarantine".to_owned())?;
            }
            "--addr" => opts.serve_addr = value(&mut i, "--addr")?,
            "--workers" => {
                opts.serve_workers = value(&mut i, "--workers")?
                    .parse()
                    .map_err(|_| "bad --workers".to_owned())?;
                if opts.serve_workers == 0 {
                    return Err("--workers must be non-zero".to_owned());
                }
            }
            "--queue" => {
                opts.serve_queue = value(&mut i, "--queue")?
                    .parse()
                    .map_err(|_| "bad --queue".to_owned())?;
                if opts.serve_queue == 0 {
                    return Err("--queue must be non-zero".to_owned());
                }
            }
            "--cache-bytes" => {
                opts.serve_cache_bytes = value(&mut i, "--cache-bytes")?
                    .parse()
                    .map_err(|_| "bad --cache-bytes".to_owned())?;
            }
            "--serve-ms" => {
                opts.serve_ms = Some(
                    value(&mut i, "--serve-ms")?
                        .parse()
                        .map_err(|_| "bad --serve-ms".to_owned())?,
                );
            }
            "--request-deadline-ms" => {
                opts.request_deadline_ms = value(&mut i, "--request-deadline-ms")?
                    .parse()
                    .map_err(|_| "bad --request-deadline-ms".to_owned())?;
                if opts.request_deadline_ms == 0 {
                    return Err("--request-deadline-ms must be non-zero".to_owned());
                }
            }
            "--max-per-peer" => {
                opts.max_per_peer = value(&mut i, "--max-per-peer")?
                    .parse()
                    .map_err(|_| "bad --max-per-peer".to_owned())?;
            }
            "--rate" => {
                opts.rate_per_peer = value(&mut i, "--rate")?
                    .parse()
                    .map_err(|_| "bad --rate".to_owned())?;
                if opts.rate_per_peer < 0.0 || !opts.rate_per_peer.is_finite() {
                    return Err("--rate must be a non-negative number".to_owned());
                }
            }
            "--max-conns" => {
                opts.max_conns = value(&mut i, "--max-conns")?
                    .parse()
                    .map_err(|_| "bad --max-conns".to_owned())?;
            }
            "--idle-timeout-ms" => {
                opts.idle_timeout_ms = value(&mut i, "--idle-timeout-ms")?
                    .parse()
                    .map_err(|_| "bad --idle-timeout-ms".to_owned())?;
                if opts.idle_timeout_ms == 0 {
                    return Err("--idle-timeout-ms must be non-zero".to_owned());
                }
            }
            "--metric" => opts.metric = value(&mut i, "--metric")?,
            "--axis" => opts.axis = value(&mut i, "--axis")?,
            "--api" => opts.filter_api = Some(value(&mut i, "--api")?),
            "--kind" => opts.filter_kind = Some(value(&mut i, "--kind")?),
            "--op" => opts.filter_op = Some(value(&mut i, "--op")?),
            "--min-tasks" => {
                opts.min_tasks = Some(
                    value(&mut i, "--min-tasks")?
                        .parse()
                        .map_err(|_| "bad --min-tasks".to_owned())?,
                );
            }
            "--max-tasks" => {
                opts.max_tasks = Some(
                    value(&mut i, "--max-tasks")?
                        .parse()
                        .map_err(|_| "bad --max-tasks".to_owned())?,
                );
            }
            "--min-bw" => {
                opts.min_bw = Some(
                    value(&mut i, "--min-bw")?
                        .parse()
                        .map_err(|_| "bad --min-bw".to_owned())?,
                );
            }
            "--max-bw" => {
                opts.max_bw = Some(
                    value(&mut i, "--max-bw")?
                        .parse()
                        .map_err(|_| "bad --max-bw".to_owned())?,
                );
            }
            "--sort" => opts.sort = value(&mut i, "--sort")?,
            "--order" => {
                opts.order_desc = match value(&mut i, "--order")?.as_str() {
                    "asc" => false,
                    "desc" => true,
                    other => return Err(format!("unknown --order `{other}` (expected asc|desc)")),
                };
            }
            "--limit" => {
                opts.limit = Some(
                    value(&mut i, "--limit")?
                        .parse()
                        .map_err(|_| "bad --limit".to_owned())?,
                );
            }
            "--offset" => {
                opts.offset = value(&mut i, "--offset")?
                    .parse()
                    .map_err(|_| "bad --offset".to_owned())?;
            }
            "--count" => opts.count_only = true,
            "--metrics" => opts.metrics_out = Some(PathBuf::from(value(&mut i, "--metrics")?)),
            "--trace" => opts.trace_out = Some(PathBuf::from(value(&mut i, "--trace")?)),
            "--repair" => opts.repair = true,
            "--journal" => opts.journal = Some(PathBuf::from(value(&mut i, "--journal")?)),
            "--contains" => opts.filter_contains = Some(value(&mut i, "--contains")?),
            "--runs" => {
                opts.runs = value(&mut i, "--runs")?
                    .parse()
                    .map_err(|_| "bad --runs".to_owned())?;
                if opts.runs == 0 {
                    return Err("--runs must be non-zero".to_owned());
                }
            }
            "--group" => opts.group = value(&mut i, "--group")?,
            "--factor" => opts.factor = value(&mut i, "--factor")?,
            "--correlate" => opts.correlate = Some(value(&mut i, "--correlate")?),
            "--outliers" => opts.outliers = true,
            other => opts.positional.push(other.to_owned()),
        }
        i += 1;
    }
    if opts.tasks == 0 || opts.ppn == 0 {
        return Err("--tasks and --ppn must be non-zero".to_owned());
    }
    Ok(opts)
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        print_help();
        return Ok(());
    };
    let opts = parse_options(&args[1..]).map_err(CliError::usage)?;
    match command.as_str() {
        "run" => cmd_run(&opts),
        "io500" => cmd_io500(&opts),
        "mdtest" => cmd_mdtest(&opts),
        "hacc" => cmd_hacc(&opts),
        "list" => cmd_list(&opts),
        "query" => cmd_query(&opts),
        "view" => cmd_view(&opts),
        "compare" => cmd_compare(&opts),
        "detect" => cmd_detect(&opts),
        "recommend" => cmd_recommend(&opts),
        "sql" => cmd_sql(&opts),
        "cycle" => cmd_cycle(&opts),
        "dxt" => cmd_dxt(&opts),
        "export" => cmd_export(&opts),
        "report" => cmd_report(&opts),
        "import" => cmd_import(&opts),
        "jube" => cmd_jube(&opts),
        "sweep" => cmd_sweep(&opts),
        "corpus" => cmd_corpus(&opts),
        "agg" => cmd_agg(&opts),
        "serve" => cmd_serve(&opts),
        "fsck" => cmd_fsck(&opts),
        "compact" => cmd_compact(&opts),
        "trace" => cmd_trace(&opts),
        "stack" => {
            print_stack();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(CliError::usage(format!(
            "unknown command `{other}` (try `iokc help`)"
        ))),
    }
}

fn print_help() {
    println!(
        "iokc — the I/O knowledge cycle (simulated FUCHS-CSC backend)\n\n\
         USAGE: iokc <command> [options]\n\n\
         COMMANDS:\n\
         \x20 run \"<ior command>\"   generate -> extract -> persist -> analyze one IOR run\n\
         \x20 io500                 run the IO500 suite and persist its knowledge\n\
         \x20 mdtest \"<mdtest cmd>\" run the metadata benchmark and persist its knowledge\n\
         \x20 hacc --particles <n>  run the HACC-IO checkpoint/restart benchmark\n\
         \x20 list                  list stored knowledge objects\n\
         \x20 query                 filtered/sorted store queries served by the query\n\
         \x20                       engine's indexes (--kind benchmark|io500, --api <API>,\n\
         \x20                       --contains <text>, --op <operation>, --min-tasks /\n\
         \x20                       --max-tasks <n>, --min-bw / --max-bw <MiB/s>,\n\
         \x20                       --sort id|tasks|command|bw, --order asc|desc,\n\
         \x20                       --limit <n>, --offset <n>, --count)\n\
         \x20 view <id>             knowledge viewer for one object\n\
         \x20 compare               comparison view (--axis transfer|block|tasks, --metric <op>)\n\
         \x20 detect                run the anomaly detectors over the store\n\
         \x20 recommend <id>        tuning recommendations for one object\n\
         \x20 sql \"<query>\"         query the store's tables directly\n\
         \x20 cycle \"<ior cmd>\"     iterative knowledge cycle (--iterations N)\n\
         \x20 dxt \"<ior cmd>\"       DXT explorer: per-rank timeline, heat map, stragglers\n\
         \x20 export <id> [file]    share a knowledge object as JSON (stdout by default)\n\
         \x20 report [file]         write the HTML knowledge-explorer report (report.html)\n\
         \x20 import <file>         add a shared JSON knowledge object to the store\n\
         \x20 jube <config file>    run a JUBE-style sweep on the simulated system\n\
         \x20 sweep <config file>   durable sweep campaign: journaled state, retries,\n\
         \x20                       quarantine (--campaign <dir>, --max-parallel <n>,\n\
         \x20                       --wp-deadline <ms>, --quarantine <n>)\n\
         \x20 sweep --resume <dir>  resume a killed campaign from its journal\n\
         \x20 corpus gen            generate a deterministic IO500 corpus: seeded sweep\n\
         \x20                       over cluster shapes, filesystems and fault mixes,\n\
         \x20                       journaled + resumable (--runs <n>, --seed <n>,\n\
         \x20                       --campaign <dir>); every 32nd point is an outlier\n\
         \x20 agg                   aggregation pushdown over the store: group-by +\n\
         \x20                       percentiles/histograms inside the segments\n\
         \x20                       (--group all|kind|api|tasks|xfer, --factor bw|\n\
         \x20                       bw_score|md_score|total_score|tasks|xfer|block|\n\
         \x20                       warnings, --correlate <f1,f2,…>, --outliers to\n\
         \x20                       flag runs outside their group's percentile band)\n\
         \x20 serve                 HTTP knowledge-explorer service (--addr <host:port>,\n\
         \x20                       --workers <n>, --queue <n>, --cache-bytes <n>,\n\
         \x20                       --request-deadline-ms <n> per-request budget (504\n\
         \x20                       past it), --max-per-peer <n> connection cap,\n\
         \x20                       --rate <req/s> per-peer rate limit,\n\
         \x20                       --max-conns <n> global open-connection cap,\n\
         \x20                       --idle-timeout-ms <n> keep-alive idle reaping,\n\
         \x20                       --serve-ms <n> to stop after a fixed window); a\n\
         \x20                       damaged store serves read-only, /healthz reports it\n\
         \x20 fsck                  check the knowledge base image and its backup\n\
         \x20                       (--repair to fix, --journal <path> to also salvage\n\
         \x20                       a torn event-journal tail)\n\
         \x20 compact               merge small sealed segments and drop deleted runs\n\
         \x20                       from the segmented store (prints the plan and the\n\
         \x20                       resulting report)\n\
         \x20 trace <journal>       span tree + per-phase latency from a --trace journal\n\
         \x20 stack                 print the simulated parallel I/O stack (Fig. 1)\n\n\
         OPTIONS: --db <path> --tasks <n> --ppn <n> --seed <n> --iterations <n>\n\
         \x20        --retries <n> --phase-deadline <ms>   (resilience: retry transient\n\
         \x20        phase failures with seeded backoff; budget per phase)\n\
         \x20        --metric <operation> --axis <transfer|block|tasks|segments>\n\
         \x20        --api <API> --contains <text>   (comparison filters)\n\
         \x20        --metrics <path>   dump the run's metrics registry as JSON\n\
         \x20        --trace <path>     stream span/log events to a checksummed journal\n\n\
         EXIT CODES: 0 ok, 1 error, 2 usage, 3 transient phase failure,\n\
         \x20        4 permanent phase failure, 5 corrupt knowledge base"
    );
}

fn open_store(opts: &Options) -> Result<KnowledgeStore, CliError> {
    KnowledgeStore::open(opts.db.clone()).map_err(store_err)
}

/// Run the three store-level anomaly detectors under a detached context
/// (these invocations happen outside a running cycle).
fn run_detectors(items: &[KnowledgeItem]) -> Result<Vec<Finding>, CliError> {
    let mut ctx = PhaseCtx::detached(PhaseKind::Analysis, "iokc-detect");
    let mut findings = Vec::new();
    findings.extend(
        IterationVarianceDetector::default()
            .analyze(&mut ctx, items)
            .map_err(cycle_err)?,
    );
    findings.extend(
        BoundingBoxDetector::default()
            .analyze(&mut ctx, items)
            .map_err(cycle_err)?,
    );
    findings.extend(
        TrendDetector::default()
            .analyze(&mut ctx, items)
            .map_err(cycle_err)?,
    );
    Ok(findings)
}

/// Observability for cycle-driving commands: the recorder runs on a
/// virtual clock (phase/module spans report *simulated* time, which is
/// what the backend actually models), and `--trace <path>` streams every
/// event into a checksummed journal that `iokc trace` can replay.
fn setup_observability(opts: &Options) -> Result<Observability, CliError> {
    let clock = Clock::Virtual(VirtualClock::new());
    let recorder = match &opts.trace_out {
        Some(path) => {
            let sink = iokc_store::JournalEventSink::open(path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
            Recorder::new(clock, std::sync::Arc::new(sink))
        }
        None => Recorder::new(clock, std::sync::Arc::new(NullSink)),
    };
    Ok(Observability::new(recorder))
}

/// After a cycle command (even a failed one): dump `--metrics` as stable
/// JSON and point at the `--trace` journal.
fn finish_observability(opts: &Options, obs: &Observability) -> Result<(), CliError> {
    if let Some(path) = &opts.metrics_out {
        let json = obs.metrics().to_json().to_pretty();
        std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote metrics to {}", path.display());
    }
    if let Some(path) = &opts.trace_out {
        println!(
            "wrote event journal to {} (inspect with `iokc trace {}`)",
            path.display(),
            path.display()
        );
    }
    Ok(())
}

/// `iokc serve` — run the embedded HTTP knowledge-explorer service over
/// the store. Unlike the cycle commands this is a live server, so the
/// recorder runs on the wall clock; `--serve-ms <n>` bounds the serving
/// window (useful for scripted smoke tests), otherwise the server runs
/// until the process is killed.
/// `iokc fsck [--repair]` — offline integrity check of the knowledge
/// base image, its backup generation, and (with `--journal <path>`) an
/// event journal's tail. Reports findings on stdout; with `--repair` it
/// fixes what it can (restore a generation, drop orphan rows, salvage a
/// torn journal tail). Exits 5 (corrupt) while unrepaired damage
/// remains, so scripts can gate on the exit code.
fn cmd_fsck(opts: &Options) -> Result<(), CliError> {
    let fsck_opts = iokc_store::FsckOptions {
        repair: opts.repair,
        journal: opts.journal.clone(),
    };
    let report = iokc_store::fsck(&opts.db, &iokc_store::StdVfs, &fsck_opts);
    for finding in &report.findings {
        let tag = if finding.repaired {
            "repaired"
        } else {
            "found"
        };
        println!("{tag}: {}", finding.what);
    }
    for note in &report.notes {
        println!("note: {note}");
    }
    if let Some(path) = &opts.metrics_out {
        // Same schema-1 dump the cycle commands write, so dashboards can
        // scrape repair activity alongside the robustness counters.
        let metrics = iokc_obs::MetricsRegistry::new();
        let _ = metrics.counter("store.faults_injected");
        let _ = metrics.counter("store.open_degraded");
        metrics
            .counter("store.fsck_repairs")
            .add(report.repaired() as u64);
        let json = metrics.to_json().to_pretty();
        std::fs::write(path, json + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        println!("wrote metrics to {}", path.display());
    }
    if report.clean() {
        println!("fsck: {} clean", opts.db.display());
        Ok(())
    } else if report.unrepaired() == 0 {
        println!("fsck: {} finding(s), all repaired", report.findings.len());
        Ok(())
    } else {
        let hint = if opts.repair {
            "damage is beyond repair; the store will still open read-only"
        } else {
            "rerun with --repair to fix what can be fixed"
        };
        Err(CliError {
            kind: CliErrorKind::Corrupt,
            message: format!(
                "{} unrepaired finding(s) in {} ({hint})",
                report.unrepaired(),
                opts.db.display()
            ),
        })
    }
}

/// `iokc compact` — offline segment maintenance: merge the sealed
/// segments into one, dropping tombstoned (deleted) runs and rewriting
/// the per-segment index blocks. Prints the plan first so operators can
/// see what a no-op means (one segment, no tombstones: nothing to do).
fn cmd_compact(opts: &Options) -> Result<(), CliError> {
    let mut store = open_store(opts)?;
    let plan = store.compaction_plan();
    if plan.is_noop() {
        println!(
            "compact: nothing to do ({} sealed segment(s), {} tombstone(s))",
            plan.input_segments.len(),
            plan.tombstones_to_drop
        );
        return Ok(());
    }
    println!(
        "compact: merging segments {:?}, dropping {} tombstone(s)",
        plan.input_segments, plan.tombstones_to_drop
    );
    let report = store.compact().map_err(store_err)?;
    match report.output_segment {
        Some(id) => println!(
            "compact: {} segment(s) -> segment {id}, {} run(s) rewritten, {} tombstone(s) dropped",
            report.segments_merged, report.runs_rewritten, report.tombstones_dropped
        ),
        None => println!(
            "compact: {} segment(s) merged away entirely ({} tombstone(s) dropped)",
            report.segments_merged, report.tombstones_dropped
        ),
    }
    Ok(())
}

fn cmd_serve(opts: &Options) -> Result<(), CliError> {
    // Serving must survive a damaged image: fall back to a read-only
    // store over the empty schema rather than refusing to start, and let
    // `/healthz` report the degradation.
    let store = KnowledgeStore::open_or_degraded(opts.db.clone());
    if let (true, Some(detail)) = (store.is_read_only(), store.health().detail()) {
        eprintln!("iokc: warning: store degraded, serving read-only: {detail}");
    }
    let recorder = match &opts.trace_out {
        Some(path) => {
            let sink = iokc_store::JournalEventSink::open(path)
                .map_err(|e| format!("open {}: {e}", path.display()))?;
            Recorder::new(Clock::wall(), std::sync::Arc::new(sink))
        }
        None => Recorder::new(Clock::wall(), std::sync::Arc::new(NullSink)),
    };
    let config = iokc_explorerd::ServerConfig {
        addr: opts.serve_addr.clone(),
        workers: opts.serve_workers,
        queue: opts.serve_queue,
        cache_bytes: opts.serve_cache_bytes,
        request_deadline: std::time::Duration::from_millis(opts.request_deadline_ms),
        max_per_peer: opts.max_per_peer,
        rate_per_peer: opts.rate_per_peer,
        max_conns: opts.max_conns,
        idle_timeout: std::time::Duration::from_millis(opts.idle_timeout_ms),
        ..iokc_explorerd::ServerConfig::default()
    };
    let server = iokc_explorerd::Server::start(config, store, std::sync::Arc::new(recorder))
        .map_err(|e| format!("bind {}: {e}", opts.serve_addr))?;
    println!(
        "serving the knowledge explorer on http://{}",
        server.local_addr()
    );
    println!(
        "endpoints: / /api/runs /api/runs/<id> /api/io500/<id> /api/compare /api/boxplot \
         /api/agg /api/dist /api/corr /dist /corr /metrics /healthz"
    );
    match opts.serve_ms {
        Some(ms) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            let stats = server.cache_stats();
            let metrics = server.metrics();
            server.shutdown();
            if let Some(path) = &opts.metrics_out {
                let json = metrics.to_json().to_pretty();
                std::fs::write(path, json + "\n")
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                println!("wrote metrics to {}", path.display());
            }
            println!(
                "serve window elapsed; cache: {} hit(s), {} miss(es), {} entrie(s) — shut down cleanly",
                stats.hits, stats.misses, stats.entries
            );
        }
        None => loop {
            // No signal handling without external crates: park until the
            // process is killed. The OS reclaims the sockets on exit.
            std::thread::sleep(std::time::Duration::from_secs(3600));
        },
    }
    Ok(())
}

/// `iokc trace <journal>` — rebuild the span tree from an event journal
/// and print it with a per-phase latency table.
fn cmd_trace(opts: &Options) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("trace needs an event journal path"))?;
    let report = iokc_store::read_journal(std::path::Path::new(path))
        .map_err(|e| format!("read {path}: {e}"))?;
    let mut events: Vec<Event> = Vec::new();
    let mut skipped = 0usize;
    for record in &report.records {
        match Event::parse_record(record) {
            Some(event) => events.push(event),
            None => skipped += 1,
        }
    }
    if events.is_empty() {
        println!("no events in {path}");
        return Ok(());
    }
    let tree = obs_trace::build_span_tree(&events);
    print!("{}", obs_trace::render_tree(&tree));
    let rows = obs_trace::phase_latency(&tree);
    if !rows.is_empty() {
        println!("\n{}", obs_trace::render_latency_table(&rows));
    }
    if skipped > 0 {
        println!("note: skipped {skipped} record(s) of unknown kind (written by a newer iokc?)");
    }
    if report.torn_tail {
        println!(
            "note: the journal had a torn tail (crash mid-append); the valid prefix was shown"
        );
    }
    Ok(())
}

fn fuchs_world(seed: u64) -> World {
    World::new(SystemConfig::fuchs_csc(), FaultPlan::none(), seed)
}

fn ensure_dirs(world: &mut World, path: &str) -> Result<(), String> {
    let mut missing = Vec::new();
    let mut dir = iokc_sim::script::parent_dir(path).to_owned();
    while dir != "/" && !world.namespace().is_dir(&dir) {
        missing.push(dir.clone());
        dir = iokc_sim::script::parent_dir(&dir).to_owned();
    }
    if missing.is_empty() {
        return Ok(());
    }
    let mut scripts = iokc_sim::script::ScriptSet::new(1);
    for dir in missing.iter().rev() {
        scripts.rank(0).mkdir(dir);
    }
    world
        .run(JobLayout::new(1, 1), &scripts)
        .map(|_| ())
        .map_err(|e| e.to_string())
}

fn cmd_run(opts: &Options) -> Result<(), CliError> {
    let command = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("run needs an ior command string"))?;
    let config = IorConfig::parse_command(command).map_err(CliError::usage)?;
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, &config.test_file)?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let mut generator = IorGenerator::new(world, layout, config, opts.seed);
    generator.with_darshan = true;

    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(opts.resilience());
    cycle.set_observability(setup_observability(opts)?);
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::extractor(DarshanExtractor))
        .register(ModuleBox::persister(open_store(opts)?))
        .register(ModuleBox::analyzer(IterationVarianceDetector::default()));
    let result = cycle.run_once();
    finish_observability(opts, cycle.observability())?;
    let report = result.map_err(cycle_err)?;
    println!(
        "generated {} artifacts, extracted {} knowledge objects, persisted ids {:?}",
        report.artifacts, report.extracted, report.persisted_ids
    );
    for finding in &report.findings {
        println!("[{}] {}", finding.tag, finding.message);
    }
    let store = open_store(opts)?;
    if let Some(id) = report.persisted_ids.first() {
        if let Some(knowledge) = store.load_knowledge(*id).map_err(store_err)? {
            println!("\n{}", render_knowledge(&knowledge));
        }
    }
    Ok(())
}

fn cmd_io500(opts: &Options) -> Result<(), CliError> {
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, "/scratch/io500/x")?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let generator = Io500Generator::new(world, layout, Io500Config::standard("/scratch/io500"));
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(opts.resilience());
    cycle.set_observability(setup_observability(opts)?);
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(Io500Extractor))
        .register(ModuleBox::persister(open_store(opts)?))
        .register(ModuleBox::analyzer(BoundingBoxDetector::default()));
    let result = cycle.run_once();
    finish_observability(opts, cycle.observability())?;
    let report = result.map_err(cycle_err)?;
    println!("io500 complete: persisted ids {:?}", report.persisted_ids);
    for finding in &report.findings {
        println!("[{}] {}", finding.tag, finding.message);
    }
    let store = open_store(opts)?;
    if let Some(id) = report.persisted_ids.first() {
        if let Some(k) = store.load_io500(*id).map_err(store_err)? {
            println!("\n{}", render_io500(&k));
        }
    }
    Ok(())
}

fn cmd_mdtest(opts: &Options) -> Result<(), CliError> {
    let command = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("mdtest -n 200 -d /scratch/md -u");
    let config = MdtestConfig::parse_command(command).map_err(CliError::usage)?;
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, &format!("{}/x", config.dir))?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let generator = MdtestGenerator::new(world, layout, config);
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(opts.resilience());
    cycle.set_observability(setup_observability(opts)?);
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(MdtestExtractor))
        .register(ModuleBox::persister(open_store(opts)?));
    let result = cycle.run_once();
    finish_observability(opts, cycle.observability())?;
    let report = result.map_err(cycle_err)?;
    println!("mdtest complete: persisted ids {:?}", report.persisted_ids);
    let store = open_store(opts)?;
    if let Some(id) = report.persisted_ids.first() {
        if let Some(k) = store.load_knowledge(*id).map_err(store_err)? {
            println!("\n{}", render_knowledge(&k));
        }
    }
    Ok(())
}

fn cmd_hacc(opts: &Options) -> Result<(), CliError> {
    // Particle count arrives as the first positional (default 2M).
    let particles: u64 = opts
        .positional
        .first()
        .map(|v| v.parse().map_err(|_| CliError::usage("bad particle count")))
        .transpose()?
        .unwrap_or(2_000_000);
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, "/scratch/hacc/x")?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let config = HaccConfig::new(
        particles,
        iokc_benchmarks::FileMode::FilePerProcess,
        iokc_sim::api::IoApi::MpiIo { collective: false },
        "/scratch/hacc/part",
    );
    let generator = HaccGenerator::new(world, layout, config);
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(opts.resilience());
    cycle.set_observability(setup_observability(opts)?);
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(HaccExtractor))
        .register(ModuleBox::persister(open_store(opts)?));
    let result = cycle.run_once();
    finish_observability(opts, cycle.observability())?;
    let report = result.map_err(cycle_err)?;
    println!("hacc-io complete: persisted ids {:?}", report.persisted_ids);
    let store = open_store(opts)?;
    if let Some(id) = report.persisted_ids.first() {
        if let Some(k) = store.load_knowledge(*id).map_err(store_err)? {
            println!("\n{}", render_knowledge(&k));
        }
    }
    Ok(())
}

fn cmd_list(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    // Summary projection: the listing never needs per-iteration results,
    // so nothing is fully deserialized.
    let rows = store
        .query_summaries(&Query::all(), &DeadlineToken::unbounded())
        .map_err(store_err)?;
    if rows.is_empty() {
        println!("knowledge base is empty ({})", opts.db.display());
        return Ok(());
    }
    let mut table = iokc_util::table::TextTable::new(vec!["kind", "id", "summary"]);
    for row in &rows {
        match row.kind {
            RunKind::Benchmark => {
                let bw = row
                    .op("write")
                    .map(|s| format!("write mean {:.0} MiB/s", s.mean_mib))
                    .unwrap_or_else(|| "no write summary".to_owned());
                table.push_row(vec![
                    "benchmark".to_owned(),
                    row.id.to_string(),
                    format!("{} | {}", row.command, bw),
                ]);
            }
            RunKind::Io500 => {
                table.push_row(vec![
                    "io500".to_owned(),
                    row.id.to_string(),
                    format!("tasks {} | total score {:.4}", row.tasks, row.total_score),
                ]);
            }
        }
    }
    print!("{}", table.render());
    Ok(())
}

/// Build the `iokc query` predicate from filter flags. As in the HTTP
/// API, `--api` and `--contains` pin the benchmark kind: IO500 runs have
/// no API and a synthetic command, so matching them there would only
/// surprise.
fn query_predicate(opts: &Options) -> Result<RunPredicate, CliError> {
    let mut conjuncts = Vec::new();
    match opts.filter_kind.as_deref() {
        Some("benchmark") => conjuncts.push(RunPredicate::Kind(RunKind::Benchmark)),
        Some("io500") => conjuncts.push(RunPredicate::Kind(RunKind::Io500)),
        Some(other) => {
            return Err(CliError::usage(format!(
                "unknown --kind `{other}` (expected benchmark|io500)"
            )))
        }
        None => {}
    }
    if let Some(api) = &opts.filter_api {
        conjuncts.push(RunPredicate::Kind(RunKind::Benchmark));
        conjuncts.push(RunPredicate::ApiEq(api.clone()));
    }
    if let Some(text) = &opts.filter_contains {
        conjuncts.push(RunPredicate::Kind(RunKind::Benchmark));
        conjuncts.push(RunPredicate::CommandContains(text.clone()));
    }
    if let Some(op) = &opts.filter_op {
        conjuncts.push(RunPredicate::HasOp(op.clone()));
    }
    if opts.min_tasks.is_some() || opts.max_tasks.is_some() {
        conjuncts.push(RunPredicate::TasksBetween(
            opts.min_tasks.unwrap_or(0),
            opts.max_tasks.unwrap_or(u32::MAX),
        ));
    }
    if opts.min_bw.is_some() || opts.max_bw.is_some() {
        conjuncts.push(RunPredicate::BandwidthBetween(
            opts.min_bw.unwrap_or(f64::NEG_INFINITY),
            opts.max_bw.unwrap_or(f64::INFINITY),
        ));
    }
    Ok(conjuncts
        .into_iter()
        .reduce(RunPredicate::and)
        .unwrap_or(RunPredicate::True))
}

/// `iokc query` — the typed query engine from the shell: filters are
/// pushed down into the store (served from its secondary indexes where
/// possible) and only summary projections come back, never full
/// knowledge objects.
fn cmd_query(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let predicate = query_predicate(opts)?;
    if opts.count_only {
        println!("{}", store.count(&predicate).map_err(store_err)?);
        return Ok(());
    }
    let order = match opts.sort.as_str() {
        "id" => RunOrder::Id,
        "tasks" => RunOrder::Tasks,
        "command" => RunOrder::Command,
        "bw" => RunOrder::Bandwidth,
        other => {
            return Err(CliError::usage(format!(
                "unknown --sort `{other}` (expected id|tasks|command|bw)"
            )))
        }
    };
    let mut query = Query::new(predicate).order_by(order).offset(opts.offset);
    if opts.order_desc {
        query = query.descending();
    }
    if let Some(limit) = opts.limit {
        query = query.limit(limit);
    }
    let rows = store
        .query_summaries(&query, &DeadlineToken::unbounded())
        .map_err(store_err)?;
    if rows.is_empty() {
        println!("no matching runs");
        return Ok(());
    }
    let mut table = iokc_util::table::TextTable::new(vec![
        "kind",
        "id",
        "tasks",
        "api",
        "bandwidth",
        "command",
    ]);
    for row in &rows {
        table.push_row(vec![
            row.kind.as_str().to_owned(),
            row.id.to_string(),
            row.tasks.to_string(),
            row.api.clone(),
            format!("{:.1}", row.bandwidth()),
            row.command.clone(),
        ]);
    }
    print!("{}", table.render());
    Ok(())
}

fn parse_id(opts: &Options) -> Result<u64, CliError> {
    opts.positional
        .first()
        .ok_or_else(|| CliError::usage("missing knowledge id"))?
        .parse()
        .map_err(|_| CliError::usage("knowledge id must be a number"))
}

fn cmd_view(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let id = parse_id(opts)?;
    if let Some(k) = store.load_knowledge(id).map_err(store_err)? {
        println!("{}", render_knowledge(&k));
        return Ok(());
    }
    if let Some(k) = store.load_io500(id).map_err(store_err)? {
        println!("{}", render_io500(&k));
        return Ok(());
    }
    Err(CliError::from(format!("no knowledge object with id {id}")))
}

fn cmd_compare(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let axis = match opts.axis.as_str() {
        "transfer" => OptionAxis::TransferSize,
        "block" => OptionAxis::BlockSize,
        "tasks" => OptionAxis::Tasks,
        "segments" => OptionAxis::Segments,
        other => return Err(CliError::usage(format!("unknown axis `{other}`"))),
    };
    let metric = MetricAxis::MeanBandwidth(opts.metric.clone());
    // The `--api`/`--contains` filters are pushed down into the store;
    // the comparison runs over summary projections.
    let mut predicate = RunPredicate::Kind(RunKind::Benchmark);
    if let Some(api) = &opts.filter_api {
        predicate = predicate.and(RunPredicate::ApiEq(api.clone()));
    }
    if let Some(text) = &opts.filter_contains {
        predicate = predicate.and(RunPredicate::CommandContains(text.clone()));
    }
    let rows = store
        .query_summaries(&Query::new(predicate), &DeadlineToken::unbounded())
        .map_err(store_err)?;
    let points = compare_summaries(&rows, axis, &metric);
    if points.is_empty() {
        println!("no comparable knowledge for metric `{}`", opts.metric);
        return Ok(());
    }
    let mut table = iokc_util::table::TextTable::new(vec![axis.label().to_owned(), metric.label()]);
    for p in &points {
        table.push_row(vec![format!("{}", p.x), format!("{:.2}", p.y)]);
    }
    print!("{}", table.render());
    let bars: Vec<(String, f64)> = points.iter().map(|p| (format!("{}", p.x), p.y)).collect();
    println!("\n{}", iokc_analysis::ascii_bars(&bars, 40));
    Ok(())
}

fn cmd_detect(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    // The detectors inspect per-iteration results, so this is a genuine
    // full projection — the one read that must deserialize everything.
    let items = store.query_items(&Query::all()).map_err(store_err)?;
    let findings = run_detectors(&items)?;
    if findings.is_empty() {
        println!(
            "no anomalies detected across {} knowledge objects",
            items.len()
        );
    }
    for finding in findings {
        println!(
            "[{}] (knowledge {}) {}",
            finding.tag,
            finding
                .knowledge_id
                .map(|i| i.to_string())
                .unwrap_or_else(|| "?".to_owned()),
            finding.message
        );
    }
    Ok(())
}

fn cmd_recommend(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let id = parse_id(opts)?;
    let knowledge = store
        .load_knowledge(id)
        .map_err(store_err)?
        .ok_or_else(|| format!("no benchmark knowledge with id {id}"))?;
    let recommendations = recommend(&knowledge);
    if recommendations.is_empty() {
        println!("no recommendations — the configuration looks well tuned");
    }
    for r in recommendations {
        println!("[{}] {}", r.rule, r.message);
    }
    Ok(())
}

fn cmd_sql(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let query = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("sql needs a query string"))?;
    // SQL queries the whole corpus, so materialize a snapshot: the
    // active generation plus every sealed segment, minus tombstones,
    // merged into one relational image.
    let db = store.snapshot().materialize().map_err(store_err)?;
    match iokc_store::sql::select(&db, query).map_err(|e| e.to_string())? {
        iokc_store::sql::QueryResult::Count(n) => println!("{n}"),
        iokc_store::sql::QueryResult::Rows { columns, rows } => {
            let mut table = iokc_util::table::TextTable::new(columns);
            for row in rows {
                table.push_row(row.iter().map(|v| v.to_string()).collect());
            }
            print!("{}", table.render());
        }
    }
    Ok(())
}

fn cmd_cycle(opts: &Options) -> Result<(), CliError> {
    let command = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("cycle needs an ior command string"))?;
    let config = IorConfig::parse_command(command).map_err(CliError::usage)?;
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, &config.test_file)?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let generator = IorGenerator::new(world, layout, config, opts.seed);
    let mut cycle = KnowledgeCycle::new();
    cycle.set_resilience(opts.resilience());
    cycle.set_observability(setup_observability(opts)?);
    cycle
        .register(ModuleBox::generator(generator))
        .register(ModuleBox::extractor(IorExtractor))
        .register(ModuleBox::persister(open_store(opts)?))
        .register(ModuleBox::analyzer(IterationVarianceDetector::default()))
        .register(ModuleBox::usage(RegenerateUsage::default()));
    let result = cycle.run_iterative(opts.iterations);
    finish_observability(opts, cycle.observability())?;
    let reports = result.map_err(cycle_err)?;
    println!("cycle ran {} iteration(s)", reports.len());
    for (i, report) in reports.iter().enumerate() {
        println!(
            "  iteration {}: {} artifacts, ids {:?}, next commands {:?}",
            i + 1,
            report.artifacts,
            report.persisted_ids,
            report.usage.new_commands
        );
    }
    Ok(())
}

fn cmd_report(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    // The HTML report renders per-iteration detail, so it needs the full
    // projection, not summaries.
    let items = store.query_items(&Query::all()).map_err(store_err)?;
    let findings = run_detectors(&items)?;
    let html = iokc_analysis::render_html(&items, &findings);
    let path = opts
        .positional
        .first()
        .map(String::as_str)
        .unwrap_or("report.html");
    std::fs::write(path, html).map_err(|e| format!("write {path}: {e}"))?;
    println!(
        "wrote {path} ({} knowledge objects, {} findings)",
        items.len(),
        findings.len()
    );
    Ok(())
}

fn cmd_export(opts: &Options) -> Result<(), CliError> {
    let store = open_store(opts)?;
    let id = parse_id(opts)?;
    let item = if let Some(k) = store.load_knowledge(id).map_err(store_err)? {
        KnowledgeItem::Benchmark(k)
    } else if let Some(k) = store.load_io500(id).map_err(store_err)? {
        KnowledgeItem::Io500(k)
    } else {
        return Err(CliError::from(format!("no knowledge object with id {id}")));
    };
    let json = item.to_json().to_pretty();
    match opts.positional.get(1) {
        Some(path) => {
            std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
            println!("exported knowledge {id} to {path}");
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn cmd_import(opts: &Options) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("import needs a file path"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let json = iokc_util::json::parse(&text).map_err(|e| e.to_string())?;
    let item = KnowledgeItem::from_json(&json).ok_or("the file is not a valid knowledge object")?;
    let mut store = open_store(opts)?;
    let id = match &item {
        KnowledgeItem::Benchmark(k) => store.save_knowledge(k).map_err(store_err)?,
        KnowledgeItem::Io500(k) => store.save_io500(k).map_err(store_err)?,
    };
    println!("imported knowledge object as id {id}");
    Ok(())
}

fn cmd_dxt(opts: &Options) -> Result<(), CliError> {
    let command = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("dxt needs an ior command string"))?;
    let config = IorConfig::parse_command(command).map_err(CliError::usage)?;
    let mut world = fuchs_world(opts.seed);
    ensure_dirs(&mut world, &config.test_file)?;
    let layout = JobLayout::new(opts.tasks, opts.ppn.min(opts.tasks));
    let result = run_ior(&mut world, layout, &config, opts.seed).map_err(|e| e.to_string())?;
    let phases: Vec<&iokc_sim::metrics::PhaseResult> =
        result.phases.iter().map(|(_, _, p)| p).collect();
    let log = darshan_from_phases(
        &phases,
        &InstrumentOptions {
            job_id: opts.seed,
            nprocs: layout.np,
            exe: "ior".to_owned(),
            dxt: true,
            api: config.api,
            start_unix: 1_656_590_400,
        },
    );
    let timeline =
        iokc_analysis::DxtTimeline::from_log(&log).ok_or("the run produced no DXT segments")?;
    print!("{}", timeline.render_report());
    if let Some(profile) = iokc_analysis::classify(&log) {
        println!("\n{}", iokc_analysis::render_profile(&profile));
    }
    std::fs::create_dir_all("figures").map_err(|e| e.to_string())?;
    let svg = timeline.render_timeline_svg(&iokc_analysis::ChartOptions {
        title: format!("DXT timeline — {command}"),
        ..iokc_analysis::ChartOptions::default()
    });
    std::fs::write("figures/dxt_timeline.svg", svg).map_err(|e| e.to_string())?;
    let (matrix, rank_ids) = timeline.heat_map(64);
    let labels: Vec<String> = rank_ids.iter().map(|r| format!("rank {r}")).collect();
    let heat = iokc_analysis::heat_map(
        &matrix,
        &labels,
        &iokc_analysis::ChartOptions {
            title: "DXT transfer heat map (bytes per window)".into(),
            x_label: "time".into(),
            ..iokc_analysis::ChartOptions::default()
        },
    );
    std::fs::write("figures/dxt_heatmap.svg", heat).map_err(|e| e.to_string())?;
    println!(
        "
wrote figures/dxt_timeline.svg and figures/dxt_heatmap.svg"
    );
    Ok(())
}

fn cmd_jube(opts: &Options) -> Result<(), CliError> {
    let path = opts
        .positional
        .first()
        .ok_or_else(|| CliError::usage("jube needs a config file path"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let config = iokc_jube::JubeConfig::parse(&text).map_err(|e| e.to_string())?;
    let tasks = opts.tasks;
    let ppn = opts.ppn.min(opts.tasks);
    let base_seed = opts.seed;
    let workspace = iokc_jube::run_sweep_parallel(&config, || {
        move |wp: usize, _step: &str, command: &str| -> Result<String, String> {
            let ior = IorConfig::parse_command(command).map_err(|e| e.to_string())?;
            let mut world = fuchs_world(base_seed ^ wp as u64);
            ensure_dirs(&mut world, &ior.test_file)?;
            let result = run_ior(&mut world, JobLayout::new(tasks, ppn), &ior, wp as u64)
                .map_err(|e| e.to_string())?;
            Ok(result.render())
        }
    })
    .map_err(|e| e.to_string())?;
    println!(
        "sweep `{}` complete: {} workpackages
",
        workspace.benchmark,
        workspace.workpackages.len()
    );
    print!("{}", workspace.result_table(&config).render());
    Ok(())
}

/// Classify a campaign failure for the exit-code taxonomy: a journal
/// that belongs to another configuration is a usage error, invalid
/// parameter combinations and fatal step failures are permanent, and
/// journal I/O trouble is unclassified.
fn campaign_err(e: iokc_jube::CampaignError) -> CliError {
    let kind = match &e {
        iokc_jube::CampaignError::Io(_) => CliErrorKind::Other,
        iokc_jube::CampaignError::Mismatch { .. } => CliErrorKind::Usage,
        iokc_jube::CampaignError::Sweep(_) => CliErrorKind::Permanent,
    };
    CliError {
        kind,
        message: e.to_string(),
    }
}

fn cmd_sweep(opts: &Options) -> Result<(), CliError> {
    // `--resume <dir>` reads the configuration copy stored in the
    // campaign directory on the first run, so resumption needs no
    // config argument (and cannot accidentally pass a different one).
    let (dir, text) = match &opts.resume {
        Some(dir) => {
            let path = dir.join(iokc_jube::campaign::CONFIG_FILE);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                CliError::usage(format!(
                    "--resume: cannot read {} (was this directory created by `iokc sweep`?): {e}",
                    path.display()
                ))
            })?;
            (dir.clone(), text)
        }
        None => {
            let config_path = opts
                .positional
                .first()
                .ok_or_else(|| CliError::usage("sweep needs a config file (or --resume <dir>)"))?;
            let text = std::fs::read_to_string(config_path)
                .map_err(|e| format!("read {config_path}: {e}"))?;
            let dir = opts
                .campaign
                .clone()
                .unwrap_or_else(|| PathBuf::from(format!("{config_path}.campaign")));
            (dir, text)
        }
    };
    let config = iokc_jube::JubeConfig::parse(&text).map_err(|e| CliError::usage(e.to_string()))?;
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let config_copy = dir.join(iokc_jube::campaign::CONFIG_FILE);
    if !config_copy.exists() {
        std::fs::write(&config_copy, &text)
            .map_err(|e| format!("write {}: {e}", config_copy.display()))?;
    }

    let obs = setup_observability(opts)?;
    let options = iokc_jube::CampaignOptions {
        max_parallel: opts.max_parallel,
        wp_deadline_ms: opts.wp_deadline_ms,
        retry: RetryPolicy::with_retries(opts.retries).seeded(opts.seed),
        quarantine_threshold: opts.quarantine,
        abort: None,
        recorder: Some(std::sync::Arc::clone(obs.recorder())),
    };
    let hooks =
        iokc_benchmarks::SimCampaignRunner::new(opts.seed, opts.tasks, opts.ppn.min(opts.tasks));
    let result = iokc_jube::run_campaign(&config, &dir, &options, || hooks.runner());
    finish_observability(opts, &obs)?;
    let report = result.map_err(campaign_err)?;

    println!(
        "campaign `{}` in {}: {}",
        config.name,
        dir.display(),
        report.summary
    );
    if report.torn_tail {
        println!("note: the journal had a torn tail (crash mid-append); the valid prefix was used");
    }
    let combos = config.expand();
    for (wp, reason) in &report.quarantined {
        let params = combos
            .get(*wp)
            .map(|params| {
                params
                    .iter()
                    .map(|(k, v)| format!("{k}={v}"))
                    .collect::<Vec<String>>()
                    .join(", ")
            })
            .unwrap_or_default();
        println!("quarantined {wp:06} [{params}]: {reason}");
    }
    for straggler in &report.stragglers {
        println!("straggler: {straggler}");
    }
    print!("{}", report.workspace.result_table(&config).render());
    // Quarantined combinations do not fail the sweep: the campaign is
    // complete when every workpackage reached a terminal state. Anything
    // still re-runnable exits transient so schedulers re-invoke us.
    if !report.summary.is_complete() {
        return Err(CliError {
            kind: CliErrorKind::Transient,
            message: format!(
                "campaign incomplete ({} workpackage(s) remaining) — resume with `iokc sweep --resume {}`",
                report.summary.remaining(),
                dir.display()
            ),
        });
    }
    Ok(())
}

/// `iokc corpus gen` — generate a fleet-scale IO500 corpus: a seeded
/// deterministic sweep over cluster shapes, file-system variants and
/// fault mixes, every rendered submission routed through the normal
/// extract path into the store. The generation is a durable campaign:
/// every submission is journaled like a sweep workpackage, so a killed
/// generation resumes where it stopped and re-running a finished one is
/// a no-op.
fn cmd_corpus(opts: &Options) -> Result<(), CliError> {
    match opts.positional.first().map(String::as_str) {
        Some("gen") => cmd_corpus_gen(opts),
        Some(other) => Err(CliError::usage(format!(
            "unknown corpus subcommand `{other}` (expected gen)"
        ))),
        None => Err(CliError::usage("corpus needs a subcommand: gen")),
    }
}

fn cmd_corpus_gen(opts: &Options) -> Result<(), CliError> {
    use iokc_jube::campaign::{replay, Record};

    let spec = iokc_benchmarks::CorpusSpec::new(opts.runs, opts.seed);
    let dir = opts.campaign.clone().unwrap_or_else(|| {
        let mut name = opts.db.as_os_str().to_owned();
        name.push(".corpus");
        PathBuf::from(name)
    });
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let journal = iokc_jube::journal_path(&dir);

    // Replay a previous generation's journal: finished indexes are
    // skipped, a changed spec is rejected (resuming onto different
    // parameters would silently mix two corpora).
    let state = if journal.exists() {
        replay(&journal).map_err(|e| format!("replay {}: {e:?}", journal.display()))?
    } else {
        iokc_jube::CampaignState::default()
    };
    if let Some((benchmark, fingerprint, _)) = &state.header {
        if benchmark != "io500-corpus" {
            return Err(CliError::usage(format!(
                "{} belongs to campaign `{benchmark}`, not a corpus generation",
                dir.display()
            )));
        }
        if *fingerprint != spec.fingerprint() {
            return Err(CliError::usage(format!(
                "{} was generated with different corpus parameters (seed/scale); \
                 use a fresh --campaign directory or the original --seed",
                dir.display()
            )));
        }
    }
    let mut writer = iokc_store::journal::JournalWriter::open(&journal)
        .map_err(|e| format!("open {}: {e}", journal.display()))?;
    if state.header.is_none() {
        let header = Record::Campaign {
            benchmark: "io500-corpus".to_owned(),
            fingerprint: spec.fingerprint(),
            total: spec.runs,
        };
        writer
            .append(&header.encode())
            .map_err(|e| format!("journal append: {e}"))?;
    }

    let mut store = open_store(opts)?;
    let mut ctx = PhaseCtx::detached(PhaseKind::Extraction, "iokc-corpus");
    let extractor = Io500Extractor;
    let skipped = (0..spec.runs).filter(|i| !state.is_pending(*i)).count();
    let mut generated = 0usize;
    let mut batch: Vec<KnowledgeItem> = Vec::new();
    let mut batch_wps: Vec<usize> = Vec::new();
    // Persist-then-journal in chunks: a `Done` record is only written
    // after its knowledge hit the store, so a crash between the two at
    // worst re-runs (deterministically identical) submissions.
    let flush = |store: &mut KnowledgeStore,
                 writer: &mut iokc_store::journal::JournalWriter,
                 batch: &mut Vec<KnowledgeItem>,
                 batch_wps: &mut Vec<usize>|
     -> Result<(), CliError> {
        if batch.is_empty() {
            return Ok(());
        }
        store.save_batch(batch).map_err(store_err)?;
        for wp in batch_wps.iter() {
            let done = Record::Done {
                wp: *wp,
                attempts: 1,
                elapsed_ms: 0,
                commands: Vec::new(),
                outputs: Vec::new(),
            };
            writer
                .append(&done.encode())
                .map_err(|e| format!("journal append: {e}"))?;
        }
        batch.clear();
        batch_wps.clear();
        Ok(())
    };
    for index in 0..spec.runs {
        if !state.is_pending(index) {
            continue;
        }
        writer
            .append(&Record::Start { wp: index }.encode())
            .map_err(|e| format!("journal append: {e}"))?;
        let run = spec
            .execute(index)
            .map_err(|e| format!("corpus point {index}: {e}"))?;
        let mut artifact = iokc_core::phases::Artifact::text(
            iokc_core::phases::ArtifactKind::Io500Output,
            &format!("corpus-{index}.txt"),
            run.output.clone(),
        )
        .with_meta("tasks", &run.point.tasks.to_string())
        .with_meta("start_time", &run.start_time.to_string())
        .with_meta("system", &format!("sim-{}", run.point.shape));
        for (key, value) in run.point.params() {
            artifact = artifact.with_meta(&key, &value);
        }
        let items = extractor
            .extract(&mut ctx, &[&artifact])
            .map_err(cycle_err)?;
        batch.extend(items);
        batch_wps.push(index);
        generated += 1;
        if batch.len() >= 512 {
            flush(&mut store, &mut writer, &mut batch, &mut batch_wps)?;
        }
    }
    flush(&mut store, &mut writer, &mut batch, &mut batch_wps)?;
    // Seal the tail so a freshly generated corpus is immediately in
    // segmented (index-block pruned) form for `iokc agg`.
    store.seal_active().map_err(store_err)?;
    let total = store
        .count(&RunPredicate::Kind(RunKind::Io500))
        .map_err(store_err)?;
    println!(
        "corpus: generated {generated} submission(s), skipped {skipped} already journaled; \
         store now holds {total} io500 run(s) (journal: {})",
        journal.display()
    );
    Ok(())
}

/// `iokc agg` — corpus analytics from the shell: group-by aggregation
/// with streaming statistics pushed down into the store (percentiles,
/// histograms, optional correlation matrix), and `--outliers` to flag
/// runs outside their group's percentile band.
fn cmd_agg(opts: &Options) -> Result<(), CliError> {
    use iokc_store::{AggregateQuery, Factor, GroupBy};

    let group = GroupBy::parse(&opts.group).ok_or_else(|| {
        CliError::usage(format!(
            "unknown --group `{}` (expected all|kind|api|tasks|xfer)",
            opts.group
        ))
    })?;
    let factor = Factor::parse(&opts.factor).ok_or_else(|| {
        CliError::usage(format!(
            "unknown --factor `{}` (expected bw|bw_score|md_score|total_score|tasks|xfer|block|warnings)",
            opts.factor
        ))
    })?;
    let mut query = AggregateQuery::new(group, factor).with_predicate(query_predicate(opts)?);
    if let Some(list) = &opts.correlate {
        let factors = list
            .split(',')
            .map(|name| {
                Factor::parse(name.trim())
                    .ok_or_else(|| CliError::usage(format!("unknown correlation factor `{name}`")))
            })
            .collect::<Result<Vec<Factor>, CliError>>()?;
        query = query.with_correlation(&factors);
    }

    let store = open_store(opts)?;
    let result = store
        .aggregate(&query, &DeadlineToken::unbounded())
        .map_err(store_err)?;
    if result.groups.is_empty() {
        println!("no matching runs");
        return Ok(());
    }
    println!(
        "aggregated {} run(s): metric {} grouped by {}",
        result.rows_aggregated,
        factor.as_str(),
        group.as_str()
    );
    let mut table = iokc_util::table::TextTable::new(vec![
        "group", "count", "min", "p50", "mean", "p99", "max", "stddev",
    ]);
    for g in &result.groups {
        table.push_row(vec![
            g.key.clone(),
            g.count.to_string(),
            format!("{:.2}", g.min),
            format!("{:.2}", g.percentile(0.5).unwrap_or(f64::NAN)),
            format!("{:.2}", g.mean),
            format!("{:.2}", g.percentile(0.99).unwrap_or(f64::NAN)),
            format!("{:.2}", g.max),
            format!("{:.2}", g.stddev),
        ]);
    }
    print!("{}", table.render());
    if let Some(corr) = &result.correlation {
        println!("\ncorrelation matrix (Pearson r):");
        let mut ctab = iokc_util::table::TextTable::new(
            std::iter::once("factor")
                .chain(corr.factors.iter().map(String::as_str))
                .collect(),
        );
        for (name, row) in corr.factors.iter().zip(&corr.matrix) {
            ctab.push_row(
                std::iter::once(name.clone())
                    .chain(row.iter().map(|r| format!("{r:+.3}")))
                    .collect(),
            );
        }
        print!("{}", ctab.render());
    }
    if opts.outliers {
        let boxes = iokc_analysis::CorpusBoxes::fit(
            &result,
            group,
            factor,
            iokc_analysis::DEFAULT_LOW_Q,
            iokc_analysis::DEFAULT_HIGH_Q,
            iokc_analysis::DEFAULT_MARGIN,
        );
        let rows = store
            .query_summaries(
                &Query::new(query_predicate(opts)?),
                &DeadlineToken::unbounded(),
            )
            .map_err(store_err)?;
        println!();
        print!("{}", boxes.render(&boxes.flag(rows.iter())));
    }
    Ok(())
}

fn print_stack() {
    println!(
        "simulated parallel I/O architecture (paper Fig. 1)\n\
         \n\
         application layer  : IOR | mdtest | HACC-IO | IO500 (iokc-benchmarks)\n\
         high-level library : HDF5 layer (open/close/chunk-index costs)\n\
         middleware         : MPI-IO (independent + two-phase collective)\n\
         operating system   : POSIX ops, per-node page cache (iokc-sim)\n\
         parallel FS        : BeeGFS-like — 4 metadata servers, striped storage targets\n\
         storage hardware   : per-target disk + read-cache bandwidth, RAID write penalty\n\
         interconnect       : per-node NIC + shared fabric, max-min fair sharing"
    );
}
