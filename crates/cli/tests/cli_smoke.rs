//! End-to-end tests of the `iokc` binary: the full workflow a user would
//! drive from a shell, against a temp knowledge base.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("iokc-cli-{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn iokc(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_iokc"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("iokc binary runs")
}

fn stdout(output: &Output) -> String {
    assert!(
        output.status.success(),
        "iokc failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

const RUN_ARGS: [&str; 5] = [
    "run",
    "ior -a mpiio -b 1m -t 512k -s 2 -F -C -e -i 3 -o /scratch/cli -k",
    "--tasks",
    "8",
    "--db",
];

#[test]
fn run_list_view_sql_flow() {
    let dir = tempdir("flow");
    let mut args: Vec<&str> = RUN_ARGS.to_vec();
    args.push("kb.json");
    let out = stdout(&iokc(&dir, &args));
    assert!(out.contains("persisted ids"));

    let list = stdout(&iokc(&dir, &["list", "--db", "kb.json"]));
    assert!(list.contains("benchmark"));
    assert!(list.contains("ior -a mpiio"));

    let view = stdout(&iokc(&dir, &["view", "1", "--db", "kb.json"]));
    assert!(view.contains("I/O pattern:"));
    assert!(view.contains("per-iteration detail:"));

    let sql = stdout(&iokc(
        &dir,
        &[
            "sql",
            "SELECT command, tasks FROM performances WHERE api = 'MPIIO'",
            "--db",
            "kb.json",
        ],
    ));
    assert!(sql.contains("ior -a mpiio"));
    assert!(sql.contains('8'));

    let detect = stdout(&iokc(&dir, &["detect", "--db", "kb.json"]));
    assert!(detect.contains("no anomalies") || detect.contains('['));

    let recommend = stdout(&iokc(&dir, &["recommend", "1", "--db", "kb.json"]));
    assert!(
        recommend.contains("well tuned") || recommend.contains('['),
        "{recommend}"
    );
}

#[test]
fn export_import_shares_knowledge_between_bases() {
    let dir = tempdir("share");
    let mut args: Vec<&str> = RUN_ARGS.to_vec();
    args.push("local.json");
    stdout(&iokc(&dir, &args));
    stdout(&iokc(
        &dir,
        &["export", "1", "shared.json", "--db", "local.json"],
    ));
    let imported = stdout(&iokc(
        &dir,
        &["import", "shared.json", "--db", "global.json"],
    ));
    assert!(imported.contains("imported knowledge object as id 1"));
    let list = stdout(&iokc(&dir, &["list", "--db", "global.json"]));
    assert!(list.contains("ior -a mpiio"));
}

#[test]
fn report_writes_html() {
    let dir = tempdir("report");
    let mut args: Vec<&str> = RUN_ARGS.to_vec();
    args.push("kb.json");
    stdout(&iokc(&dir, &args));
    stdout(&iokc(&dir, &["report", "out.html", "--db", "kb.json"]));
    let html = std::fs::read_to_string(dir.join("out.html")).unwrap();
    assert!(html.contains("I/O knowledge explorer"));
    assert!(html.contains("ior -a mpiio"));
}

#[test]
fn errors_are_reported_not_panicked() {
    let dir = tempdir("errors");
    let bad = iokc(&dir, &["view", "99", "--db", "kb.json"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("no knowledge object"));

    let unknown = iokc(&dir, &["frobnicate"]);
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown command"));

    let badcmd = iokc(&dir, &["run", "fio --bs=4k", "--db", "kb.json"]);
    assert!(!badcmd.status.success());
    assert!(String::from_utf8_lossy(&badcmd.stderr).contains("invalid ior command"));
}

#[test]
fn error_classes_map_to_distinct_exit_codes() {
    let dir = tempdir("exitcodes");

    // Usage errors (bad command line) exit 2.
    let unknown = iokc(&dir, &["frobnicate"]);
    assert_eq!(unknown.status.code(), Some(2));
    let badflag = iokc(&dir, &["list", "--tasks", "zero"]);
    assert_eq!(badflag.status.code(), Some(2));
    let badcmd = iokc(&dir, &["run", "fio --bs=4k", "--db", "kb.json"]);
    assert_eq!(badcmd.status.code(), Some(2));

    // A corrupt knowledge-base image (and no recoverable backup) exits 5
    // with a one-line classified stderr message.
    std::fs::write(dir.join("kb.json"), "this is not a knowledge base").unwrap();
    let corrupt = iokc(&dir, &["list", "--db", "kb.json"]);
    assert_eq!(corrupt.status.code(), Some(5));
    let stderr = String::from_utf8_lossy(&corrupt.stderr);
    assert!(stderr.starts_with("iokc: corrupt: "), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");

    // Unclassified failures keep the generic exit 1.
    let missing = iokc(&dir, &["view", "99", "--db", "empty.json"]);
    assert_eq!(missing.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&missing.stderr).starts_with("iokc: error: "));
}

#[test]
fn resilience_flags_are_accepted_by_run() {
    let dir = tempdir("resilience-flags");
    let mut args: Vec<&str> = RUN_ARGS.to_vec();
    args.extend(["kb.json", "--retries", "2", "--phase-deadline", "600000"]);
    let out = stdout(&iokc(&dir, &args));
    assert!(out.contains("persisted ids"));
}

#[test]
fn query_filters_and_counts_from_the_shell() {
    let dir = tempdir("query");
    let mut args: Vec<&str> = RUN_ARGS.to_vec();
    args.push("kb.json");
    stdout(&iokc(&dir, &args));

    // One `iokc run` persists two objects: the IOR run itself and the
    // darshan-derived knowledge.
    let count = stdout(&iokc(&dir, &["query", "--count", "--db", "kb.json"]));
    assert_eq!(count.trim(), "2");

    let rows = stdout(&iokc(
        &dir,
        &[
            "query", "--api", "MPIIO", "--sort", "bw", "--order", "desc", "--db", "kb.json",
        ],
    ));
    assert!(rows.contains("ior -a mpiio"), "{rows}");
    assert!(rows.contains("benchmark"), "{rows}");
    assert!(!rows.contains("darshan"), "api filter leaked: {rows}");

    let contains = stdout(&iokc(
        &dir,
        &["query", "--contains", "darshan", "--db", "kb.json"],
    ));
    assert!(contains.contains("darshan:ior"), "{contains}");

    let none = stdout(&iokc(&dir, &["query", "--api", "HDF5", "--db", "kb.json"]));
    assert!(none.contains("no matching runs"), "{none}");

    let filtered = stdout(&iokc(
        &dir,
        &["query", "--min-tasks", "9", "--count", "--db", "kb.json"],
    ));
    assert_eq!(filtered.trim(), "0");

    let bad = iokc(&dir, &["query", "--sort", "latency", "--db", "kb.json"]);
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("unknown --sort"));
}

#[test]
fn help_lists_every_command() {
    let dir = tempdir("help");
    let help = stdout(&iokc(&dir, &["help"]));
    for command in [
        "run",
        "io500",
        "mdtest",
        "hacc",
        "list",
        "query",
        "view",
        "compare",
        "detect",
        "recommend",
        "sql",
        "cycle",
        "dxt",
        "export",
        "import",
        "report",
        "jube",
        "stack",
    ] {
        assert!(help.contains(command), "help missing `{command}`");
    }
}
