//! A hermetic stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! This workspace builds in offline containers with no crates.io
//! registry, so the benchmark-harness API its `benches/` use is
//! reproduced here. Measurement is a simple best-of-N wall-clock
//! timing printed per benchmark — no statistics, plots, or baselines.
//!
//! Cargo runs `harness = false` bench binaries during `cargo test` as
//! well as `cargo bench`. When invoked without `--bench` (test mode)
//! every benchmark body executes exactly once, so the benches act as
//! fast smoke tests; with `--bench` each runs `sample_size` samples.

use std::time::Instant;

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// The top-level benchmark driver.
pub struct Criterion {
    full_run: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let full_run = std::env::args().any(|a| a == "--bench");
        Criterion { full_run }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            samples: 10,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) {
        run_one(id, self.full_run, 10, &mut body);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark (full runs).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Label, mut body: F) {
        run_one(
            &id.label(),
            self.criterion.full_run,
            self.samples,
            &mut body,
        );
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: impl Label, input: &I, mut body: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &id.label(),
            self.criterion.full_run,
            self.samples,
            &mut |b| {
                body(b, input);
            },
        );
    }

    /// End the group (printing nothing extra in this stand-in).
    pub fn finish(self) {}
}

/// Benchmark identifiers: plain strings or `BenchmarkId`s.
pub trait Label {
    /// Printable identifier.
    fn label(&self) -> String;
}

impl Label for &str {
    fn label(&self) -> String {
        (*self).to_owned()
    }
}

impl Label for String {
    fn label(&self) -> String {
        self.clone()
    }
}

/// A function name combined with a parameter, as in criterion.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Label for BenchmarkId {
    fn label(&self) -> String {
        self.name.clone()
    }
}

/// Passed to benchmark bodies; `iter` times the supplied routine.
pub struct Bencher {
    full_run: bool,
    samples: usize,
    best_nanos: Option<u128>,
}

impl Bencher {
    /// Time the routine. Test mode runs it once; bench mode keeps the
    /// best of `sample_size` samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let runs = if self.full_run { self.samples } else { 1 };
        let mut best = u128::MAX;
        for _ in 0..runs {
            let start = Instant::now();
            black_box(routine());
            best = best.min(start.elapsed().as_nanos());
        }
        self.best_nanos = Some(best);
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, full_run: bool, samples: usize, body: &mut F) {
    let mut bencher = Bencher {
        full_run,
        samples,
        best_nanos: None,
    };
    body(&mut bencher);
    match bencher.best_nanos {
        Some(nanos) if full_run => println!("  {id}: best {nanos} ns"),
        Some(_) => println!("  {id}: ok (smoke run)"),
        None => println!("  {id}: no iter() call"),
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
