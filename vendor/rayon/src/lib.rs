//! A hermetic stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! This workspace builds in offline containers with no crates.io
//! registry, so the handful of rayon APIs it uses are reproduced here on
//! top of plain sequential iterators. The semantics match rayon's for
//! deterministic workloads (ordered `collect`, short-circuiting
//! `Result` collection); only the parallel execution is elided. The
//! package name and version shadow the real crate so switching back is
//! a one-line change in the workspace manifest.

/// The traits users import with `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};
}

/// Sequential re-implementation of the parallel iterator surface.
pub mod iter {
    /// Conversion into a "parallel" iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item;
        /// The iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert self into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = SeqIter<I::IntoIter>;
        fn into_par_iter(self) -> Self::Iter {
            SeqIter {
                inner: self.into_iter(),
            }
        }
    }

    /// The core iterator trait; every adapter below returns another
    /// implementor so chains like `into_par_iter().enumerate().map(..)
    /// .collect()` type-check exactly as with rayon.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item;
        /// The underlying sequential iterator.
        type Seq: Iterator<Item = Self::Item>;

        /// Unwrap into the underlying sequential iterator.
        fn into_seq(self) -> Self::Seq;

        /// Map every element.
        fn map<U, F: FnMut(Self::Item) -> U>(self, f: F) -> SeqIter<std::iter::Map<Self::Seq, F>> {
            SeqIter {
                inner: self.into_seq().map(f),
            }
        }

        /// Filter elements.
        fn filter<F: FnMut(&Self::Item) -> bool>(
            self,
            f: F,
        ) -> SeqIter<std::iter::Filter<Self::Seq, F>> {
            SeqIter {
                inner: self.into_seq().filter(f),
            }
        }

        /// Pair every element with its index.
        fn enumerate(self) -> SeqIter<std::iter::Enumerate<Self::Seq>> {
            SeqIter {
                inner: self.into_seq().enumerate(),
            }
        }

        /// Collect into any `FromIterator` container (including
        /// `Result<Vec<_>, _>`, which short-circuits like rayon's).
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.into_seq().collect()
        }

        /// Sum the elements.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.into_seq().sum()
        }

        /// Count the elements.
        fn count(self) -> usize {
            self.into_seq().count()
        }

        /// Run a closure on every element.
        fn for_each<F: FnMut(Self::Item)>(self, f: F) {
            self.into_seq().for_each(f);
        }
    }

    /// Indexed variants (no-ops here, present for API parity).
    pub trait IndexedParallelIterator: ParallelIterator {}
    impl<T: ParallelIterator> IndexedParallelIterator for T {}

    /// A sequential iterator wearing the parallel-iterator trait.
    pub struct SeqIter<I> {
        inner: I,
    }

    impl<I: Iterator> ParallelIterator for SeqIter<I> {
        type Item = I::Item;
        type Seq = I;
        fn into_seq(self) -> I {
            self.inner
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_matches_sequential() {
        let doubled: Vec<i32> = vec![1, 2, 3].into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn enumerate_then_result_collect_short_circuits() {
        let ok: Result<Vec<usize>, String> = (0..4usize)
            .into_par_iter()
            .enumerate()
            .map(|(i, v)| {
                if v < 4 {
                    Ok(i + v)
                } else {
                    Err("big".to_owned())
                }
            })
            .collect();
        assert_eq!(ok.unwrap(), vec![0, 2, 4, 6]);
        let err: Result<Vec<u32>, String> = vec![1u32, 9]
            .into_par_iter()
            .map(|v| {
                if v < 5 {
                    Ok(v)
                } else {
                    Err(format!("{v} too big"))
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "9 too big");
    }
}
