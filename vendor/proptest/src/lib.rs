//! A hermetic stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace builds in offline containers with no crates.io
//! registry, so the subset of the proptest API its tests use is
//! reproduced here: the [`proptest!`] macro, the [`strategy::Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, integer and float
//! range strategies, regex-literal string strategies (character
//! classes, `.`, and `{m,n}` quantifiers), tuple composition,
//! [`collection::vec`]/[`collection::btree_map`], [`option::of`],
//! [`prop_oneof!`], and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, on purpose:
//!
//! * **No shrinking.** A failing case panics with the generated inputs
//!   in the assertion message instead of minimizing them.
//! * **Fully deterministic.** Values derive from a fixed per-test seed
//!   (the test's name), so every run of the suite sees the same cases.
//! * **Regex support is the subset the workspace uses** — literals,
//!   escapes, `[...]` classes with ranges and negation, `.`, and the
//!   `{n}`/`{m,n}`/`*`/`+`/`?` quantifiers. Unsupported syntax panics
//!   at test time rather than silently generating wrong data.

pub mod test_runner {
    //! Deterministic case-count configuration and RNG.

    /// Mirror of proptest's `Config`, exposed as `ProptestConfig`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // The real default is 256; 64 keeps deterministic offline
            // suites fast while still exploring a useful input space.
            Config { cases: 64 }
        }
    }

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from raw state.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Seed deterministically from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range in strategy");
            // Multiply-shift bounded sampling; bias is negligible for
            // test generation purposes.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform `usize` in `[lo, hi)`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "empty usize range in strategy");
            lo + self.below((hi - lo) as u64) as usize
        }

        /// Uniform float in `[0, 1)`.
        pub fn f64_unit(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and its combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }

        /// Build a recursive strategy: `depth` applications of
        /// `recurse` stacked on this leaf strategy. The depth budget
        /// replaces proptest's size-driven recursion; `_desired_size`
        /// and `_expected_branch_size` are accepted for signature
        /// parity and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strategy = self.boxed();
            for _ in 0..depth {
                strategy = recurse(strategy).boxed();
            }
            strategy
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !options.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { options }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.usize_in(0, self.options.len());
            self.options[pick].generate(rng)
        }
    }

    /// Always-the-same-value strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `any::<T>()` — the full value space of `T`.
    pub struct Any<T>(PhantomData<T>);

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generate an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy for any `Arbitrary` type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values across a wide magnitude span.
            let magnitude = rng.f64_unit() * 600.0 - 300.0;
            let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
            sign * magnitude.exp2()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty range in strategy");
                    let offset = ((u128::from(rng.next_u64()) as i128)
                        .rem_euclid(span)) as i128;
                    ((self.start as i128) + offset) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range in strategy");
            self.start + rng.f64_unit() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
        (A, B, C, D, E, F, G, H, I)
        (A, B, C, D, E, F, G, H, I, J)
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_regex(self, rng)
        }
    }
}

pub mod string {
    //! String generation from the regex-literal subset the workspace
    //! uses: literals, escapes, `[...]` classes (ranges, negation),
    //! `.`, and `{n}` / `{m,n}` / `*` / `+` / `?` quantifiers.

    use crate::test_runner::TestRng;

    enum Element {
        /// Draw one char from this set.
        OneOf(Vec<char>),
        /// Draw one printable char *not* in this set.
        NoneOf(Vec<char>),
        /// Any char except newline (`.`).
        Dot,
        /// A fixed char.
        Literal(char),
    }

    struct Piece {
        element: Element,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let element = match chars[i] {
                '[' => {
                    i += 1;
                    let negated = chars.get(i) == Some(&'^');
                    if negated {
                        i += 1;
                    }
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            unescape(chars.get(i).copied().unwrap_or('\\'))
                        } else {
                            chars[i]
                        };
                        // A range needs `-` followed by a non-`]` char.
                        if chars.get(i + 1) == Some(&'-')
                            && chars.get(i + 2).is_some_and(|c| *c != ']')
                        {
                            let hi = chars[i + 2];
                            for code in (lo as u32)..=(hi as u32) {
                                if let Some(c) = char::from_u32(code) {
                                    set.push(c);
                                }
                            }
                            i += 3;
                        } else {
                            set.push(lo);
                            i += 1;
                        }
                    }
                    assert!(
                        i < chars.len(),
                        "unterminated character class in pattern {pattern:?}"
                    );
                    i += 1; // consume ']'
                    if negated {
                        Element::NoneOf(set)
                    } else {
                        assert!(!set.is_empty(), "empty character class in {pattern:?}");
                        Element::OneOf(set)
                    }
                }
                '.' => {
                    i += 1;
                    Element::Dot
                }
                '\\' => {
                    i += 1;
                    let c = unescape(chars.get(i).copied().unwrap_or('\\'));
                    i += 1;
                    Element::Literal(c)
                }
                '(' | ')' | '|' => {
                    panic!(
                        "unsupported regex syntax {:?} in pattern {pattern:?}",
                        chars[i]
                    )
                }
                c => {
                    i += 1;
                    Element::Literal(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == '}')
                        .unwrap_or_else(|| panic!("unterminated {{..}} in {pattern:?}"));
                    let body: String = chars[i + 1..i + close].iter().collect();
                    i += close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad {m,n} lower bound"),
                            hi.trim().parse().expect("bad {m,n} upper bound"),
                        ),
                        None => {
                            let n = body.trim().parse().expect("bad {n} count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted quantifier in {pattern:?}");
            pieces.push(Piece { element, min, max });
        }
        pieces
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn dot_char(rng: &mut TestRng) -> char {
        // Mostly printable ASCII; occasionally tabs and multi-byte
        // characters so parsers meet non-trivial UTF-8.
        const EXOTIC: [char; 8] = ['\t', 'é', 'ß', '中', '😀', '¤', '\u{7f}', '\u{1}'];
        if rng.below(10) == 0 {
            EXOTIC[rng.usize_in(0, EXOTIC.len())]
        } else {
            char::from_u32(0x20 + rng.below(0x5f) as u32).unwrap_or(' ')
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.usize_in(0, piece.max - piece.min + 1);
            for _ in 0..count {
                let c = match &piece.element {
                    Element::Literal(c) => *c,
                    Element::Dot => dot_char(rng),
                    Element::OneOf(set) => set[rng.usize_in(0, set.len())],
                    Element::NoneOf(set) => loop {
                        let candidate = dot_char(rng);
                        if !set.contains(&candidate) {
                            break candidate;
                        }
                    },
                };
                out.push(c);
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// How many elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                lo: exact,
                hi: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> SizeRange {
            SizeRange {
                lo: range.start,
                hi: range.end,
            }
        }
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.lo, self.hi.max(self.lo + 1))
        }
    }

    /// Strategy producing `Vec<S::Value>`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A map with key/value strategies and a size range. Duplicate keys
    /// collapse, so the generated map may be smaller than drawn.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + Debug,
        V::Value: Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.pick(rng);
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` about a third of the time, otherwise `Some(inner)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(3) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! The names `use proptest::prelude::*` brings in.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::` paths as used inside prelude-importing test modules.
    pub mod prop {
        pub use crate::{collection, option};
    }
}

/// Assert a condition inside a property test. Without shrinking there
/// is no early-return protocol, so this is a plain `assert!` that
/// panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The proptest entry point: declares `#[test]` functions whose
/// arguments are drawn from strategies, running `cases` deterministic
/// cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            (<$crate::test_runner::Config as Default>::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..200 {
            let s = "[a-z0-9/]{1,24}".generate(&mut rng);
            assert!((1..=24).contains(&s.chars().count()), "{s:?}");
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '/'));

            let t = "[^']{0,40}".generate(&mut rng);
            assert!(!t.contains('\''));

            let dot = ".{0,20}".generate(&mut rng);
            assert!(dot.chars().count() <= 20);
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..500 {
            let v = (3u32..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let f = (-1e9f64..1e9).generate(&mut rng);
            assert!((-1e9..1e9).contains(&f));
            let i = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn determinism_same_seed_same_stream() {
        let gen = |seed| {
            let mut rng = TestRng::from_seed(seed);
            (0..20)
                .map(|_| crate::collection::vec(0u64..100, 0..5).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_draws_and_runs(
            v in prop::collection::vec(any::<bool>(), 3),
            pick in prop_oneof![Just("a"), Just("b")],
            opt in prop::option::of(0u8..9),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(pick == "a" || pick == "b");
            if let Some(x) = opt {
                prop_assert!(x < 9);
            }
        }
    }
}
