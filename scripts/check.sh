#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The explorer service handles untrusted network input, so it gets a
# stricter gate: any unwrap in the crate is an error, not a warning.
echo "==> cargo clippy -p iokc-explorerd (unwraps are errors)"
cargo clippy -p iokc-explorerd --all-targets -- -D warnings -D clippy::unwrap_used

# The store executes queries over persisted data and now backs every
# read path, so it gets the same strict gate.
echo "==> cargo clippy -p iokc-store (unwraps are errors)"
cargo clippy -p iokc-store --all-targets -- -D warnings -D clippy::unwrap_used

# The observability layer runs inside every cycle phase and must never
# take a phase down, so it joins the strict-unwrap club.
echo "==> cargo clippy -p iokc-obs (unwraps are errors)"
cargo clippy -p iokc-obs --all-targets -- -D warnings -D clippy::unwrap_used

# Analysis, usage, and simulation produce the knowledge every other
# layer consumes; a panic there poisons the whole cycle.
echo "==> cargo clippy -p iokc-analysis -p iokc-usage -p iokc-sim (unwraps are errors)"
cargo clippy -p iokc-analysis -p iokc-usage -p iokc-sim --all-targets -- -D warnings -D clippy::unwrap_used

# The corpus generator feeds fleet-scale ingest; it joins the strict
# gate so a malformed point can never panic a campaign mid-journal.
echo "==> cargo clippy -p iokc-benchmarks (unwraps are errors)"
cargo clippy -p iokc-benchmarks --all-targets -- -D warnings -D clippy::unwrap_used

# The foundation crates everything else builds on: a panic in JSON,
# pattern matching, the knowledge model, or the trace codec surfaces in
# every phase of the cycle at once.
echo "==> cargo clippy -p iokc-util -p iokc-core -p iokc-darshan (unwraps are errors)"
cargo clippy -p iokc-util -p iokc-core -p iokc-darshan --all-targets -- -D warnings -D clippy::unwrap_used

# Crash-consistency: enumerate every crash point of the mixed workload
# and verify each post-crash disk image recovers an acknowledged prefix.
echo "==> crash-consistency suite"
cargo test -p iokc-integration --test crash_consistency -q

# Compaction smoke: seal/merge/tombstone protocol plus the snapshot
# immunity proptest, quick enough to run on every check.
echo "==> compaction smoke"
cargo test -p iokc-store compaction -q

# Network chaos: fault-injected transports, misbehaving clients,
# deadline budgets, and admission control against the explorer service.
echo "==> explorerd chaos suite"
cargo test -p iokc-integration --test explorerd_chaos -q

# Bench smoke: the vendored criterion runs each bench body once under
# `cargo test`, so regressions in the bench harnesses fail fast here.
echo "==> query-engine bench smoke"
cargo test -p iokc-bench --bench query_engine

# Loadtest smoke: the reactor holds 100 keep-alive connections, streams
# a full listing, and answers a timed phase under a generous p99 bound —
# catches event-loop stalls (a missed waker alone costs a 25ms slice).
echo "==> explorerd loadtest smoke (100 conns)"
cargo run --release -q -p iokc-bench --bin explorerd_loadtest -- \
  --conns 100 --requests 200 --rows 2000 --p99-max-ms 250 --out - >/dev/null

# Corpus analytics end to end: deterministic corpus generation through
# the extract path, aggregation pushdown counters, outlier detection.
echo "==> corpus analytics suite"
cargo test -p iokc-integration --test corpus_analytics -q

# CLI smoke: generate a small corpus, resume it (everything journaled,
# nothing regenerated), and run a group-by aggregate over the result.
echo "==> corpus gen + agg CLI smoke"
corpus_dir="$(mktemp -d)"
trap 'rm -rf "$corpus_dir"' EXIT
cargo run -q -p iokc-cli -- corpus gen --db "$corpus_dir/corpus.iokc.json" \
  --campaign "$corpus_dir/campaign" --runs 64 --seed 42 | grep -q "generated 64"
cargo run -q -p iokc-cli -- corpus gen --db "$corpus_dir/corpus.iokc.json" \
  --campaign "$corpus_dir/campaign" --runs 64 --seed 42 | grep -q "skipped 64"
cargo run -q -p iokc-cli -- agg --db "$corpus_dir/corpus.iokc.json" \
  --group tasks --factor total_score --outliers | grep -q "2 run(s) outside their band"

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
