#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The explorer service handles untrusted network input, so it gets a
# stricter gate: any unwrap in the crate is an error, not a warning.
echo "==> cargo clippy -p iokc-explorerd (unwraps are errors)"
cargo clippy -p iokc-explorerd --all-targets -- -D warnings -D clippy::unwrap_used

# The store executes queries over persisted data and now backs every
# read path, so it gets the same strict gate.
echo "==> cargo clippy -p iokc-store (unwraps are errors)"
cargo clippy -p iokc-store --all-targets -- -D warnings -D clippy::unwrap_used

# The observability layer runs inside every cycle phase and must never
# take a phase down, so it joins the strict-unwrap club.
echo "==> cargo clippy -p iokc-obs (unwraps are errors)"
cargo clippy -p iokc-obs --all-targets -- -D warnings -D clippy::unwrap_used

# Analysis, usage, and simulation produce the knowledge every other
# layer consumes; a panic there poisons the whole cycle.
echo "==> cargo clippy -p iokc-analysis -p iokc-usage -p iokc-sim (unwraps are errors)"
cargo clippy -p iokc-analysis -p iokc-usage -p iokc-sim --all-targets -- -D warnings -D clippy::unwrap_used

# Crash-consistency: enumerate every crash point of the mixed workload
# and verify each post-crash disk image recovers an acknowledged prefix.
echo "==> crash-consistency suite"
cargo test -p iokc-integration --test crash_consistency -q

# Compaction smoke: seal/merge/tombstone protocol plus the snapshot
# immunity proptest, quick enough to run on every check.
echo "==> compaction smoke"
cargo test -p iokc-store compaction -q

# Network chaos: fault-injected transports, misbehaving clients,
# deadline budgets, and admission control against the explorer service.
echo "==> explorerd chaos suite"
cargo test -p iokc-integration --test explorerd_chaos -q

# Bench smoke: the vendored criterion runs each bench body once under
# `cargo test`, so regressions in the bench harnesses fail fast here.
echo "==> query-engine bench smoke"
cargo test -p iokc-bench --bench query_engine

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
