#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, and the full test
# suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(git -C "$(dirname "$0")" rev-parse --show-toplevel)"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# The explorer service handles untrusted network input, so it gets a
# stricter gate: any unwrap in the crate is an error, not a warning.
echo "==> cargo clippy -p iokc-explorerd (unwraps are errors)"
cargo clippy -p iokc-explorerd --all-targets -- -D warnings -D clippy::unwrap_used

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> all checks passed"
